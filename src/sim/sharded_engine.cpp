#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "obs/registry.hpp"

namespace gridlb::sim {

bool SpinBarrier::arrive_and_wait() {
  if (killed_.load(std::memory_order_acquire)) return false;
  const std::uint64_t phase = phase_.load(std::memory_order_relaxed);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    // Everyone else is parked in the wait loop below (none touch
    // `arrived_` again until the phase advances), so the reset cannot race
    // with next-phase arrivals.
    arrived_.store(0, std::memory_order_relaxed);
    phase_.fetch_add(1, std::memory_order_release);
    return !killed_.load(std::memory_order_acquire);
  }
  int spins = 0;
  while (phase_.load(std::memory_order_acquire) == phase) {
    if (killed_.load(std::memory_order_acquire)) return false;
    if (++spins > 1024) {
      std::this_thread::yield();
      spins = 0;
    }
  }
  return !killed_.load(std::memory_order_acquire);
}

void SpinBarrier::kill() {
  killed_.store(true, std::memory_order_release);
  // Bump the phase so current waiters re-check the kill switch promptly.
  phase_.fetch_add(1, std::memory_order_release);
}

ShardedEngine::ShardedEngine(std::size_t shards, SimTime lookahead)
    : lookahead_(lookahead) {
  GRIDLB_REQUIRE(shards >= 1, "shard count must be at least 1");
  if (shards == 1) {
    // Single shard: the plain sequence-ordered engine, byte-identical to a
    // pre-sharding run.
    engines_.push_back(std::make_unique<Engine>());
  } else {
    GRIDLB_REQUIRE(lookahead > 0.0,
                   "a sharded simulation needs a positive lookahead");
    for (std::size_t s = 0; s < shards; ++s) {
      engines_.push_back(std::make_unique<Engine>(&shared_, s));
      engines_.back()->set_milestone_lead(lookahead);
    }
  }
  outbox_.resize(engines_.size());
}

void ShardedEngine::post(std::size_t dest, SimTime delay, EventFn fn) {
  GRIDLB_REQUIRE(dest < engines_.size(), "post to unknown shard");
  GRIDLB_REQUIRE(delay >= 0.0, "delay must be non-negative");
  Engine* const src = Engine::current();
  if (src == nullptr) {
    // Scenario setup, before the run: schedule directly (genesis lineage).
    engines_[dest]->schedule_in(delay, std::move(fn));
    return;
  }
  if (!sharded() || dest == src->shard_index()) {
    src->schedule_in(delay, std::move(fn));
    return;
  }
  GRIDLB_REQUIRE(delay >= lookahead_,
                 "cross-shard post inside the lookahead window");
  outbox_[src->shard_index()].push_back(
      Posted{dest, src->now() + delay, src->make_child_ref(), std::move(fn)});
}

std::uint64_t ShardedEngine::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& engine : engines_) total += engine->events_processed();
  return total;
}

std::uint64_t ShardedEngine::events_swept() const {
  std::uint64_t total = 0;
  for (const auto& engine : engines_) total += engine->events_swept();
  return total;
}

SimTime ShardedEngine::max_now() const {
  SimTime latest = 0.0;
  for (const auto& engine : engines_) latest = std::max(latest, engine->now());
  return latest;
}

void ShardedEngine::drive(const DriveGoal& goal, SimTime horizon) {
  GRIDLB_REQUIRE(goal.done != nullptr && goal.remaining != nullptr,
                 "drive goal must be fully specified");
  if (!sharded()) {
    // The classic driver loop, kept textually in step with
    // run_experiment's historical behaviour.
    Engine& engine = *engines_[0];
    while (!goal.done()) {
      if (goal.until < kTimeInfinity &&
          engine.next_event_time() >= goal.until) {
        break;  // open-loop cutoff: everything before `until` has run
      }
      GRIDLB_REQUIRE(engine.step(), "event queue drained with tasks missing");
      GRIDLB_REQUIRE(engine.now() <= horizon,
                     "experiment exceeded the horizon limit");
    }
    return;
  }
  horizon_ = horizon;
  next_times_.assign(engines_.size(), kTimeInfinity);
  decision_ = Decision{};
  setup_telemetry();
  SpinBarrier barrier(static_cast<int>(engines_.size()));
  barrier_ = &barrier;
  ThreadPool pool(static_cast<int>(engines_.size()));
  // One dispatch for the whole run: slot s drives shard s, synchronizing
  // with spin barriers between windows.  parallel_for rethrows the first
  // shard exception after every shard has unwound (the barrier kill below
  // guarantees they all do).
  pool.parallel_for(static_cast<int>(engines_.size()),
                    [&](int begin, int /*end*/, int /*slot*/) {
                      worker(static_cast<std::size_t>(begin), goal);
                    });
  barrier_ = nullptr;
  if (telemetry_ != nullptr) {
    // Final partial window (decide() can finish mid-window) + sweep tally.
    flush_window_telemetry();
    for (std::size_t s = 0; s < engines_.size(); ++s) {
      obs::registry()
          ->counter("shard." + std::to_string(s) + ".events_swept")
          .add(engines_[s]->events_swept() - telemetry_->swept_base[s]);
    }
    telemetry_.reset();
  }
}

void ShardedEngine::setup_telemetry() {
  telemetry_.reset();
  obs::MetricsRegistry* const registry = obs::registry();
  if (registry == nullptr) return;
  auto telemetry = std::make_unique<Telemetry>();
  for (std::size_t s = 0; s < engines_.size(); ++s) {
    const std::string prefix = "shard." + std::to_string(s) + ".";
    telemetry->events.push_back(&registry->counter(prefix + "events"));
    telemetry->barrier_wait_ns.push_back(
        &registry->counter(prefix + "barrier_wait_ns"));
    telemetry->outbox_messages.push_back(
        &registry->counter(prefix + "outbox_messages"));
    telemetry->serial_events.push_back(
        &registry->counter(prefix + "serial_events"));
    telemetry->window_base.push_back(engines_[s]->events_processed());
    telemetry->swept_base.push_back(engines_[s]->events_swept());
  }
  telemetry->windows = &registry->counter("shard.windows");
  telemetry->serial_entries = &registry->counter("shard.serial_entries");
  telemetry->load_imbalance = &registry->gauge("shard.load_imbalance");
  telemetry_ = std::move(telemetry);
}

void ShardedEngine::flush_window_telemetry() {
  Telemetry& telemetry = *telemetry_;
  std::uint64_t total = 0;
  std::uint64_t busiest = 0;
  for (std::size_t s = 0; s < engines_.size(); ++s) {
    const std::uint64_t processed = engines_[s]->events_processed();
    const std::uint64_t delta = processed - telemetry.window_base[s];
    telemetry.window_base[s] = processed;
    telemetry.events[s]->add(delta);
    total += delta;
    busiest = std::max(busiest, delta);
  }
  if (total == 0) return;
  const double mean =
      static_cast<double>(total) / static_cast<double>(engines_.size());
  telemetry.imbalance_sum += static_cast<double>(busiest) / mean;
  ++telemetry.imbalance_windows;
  telemetry.load_imbalance->set(
      telemetry.imbalance_sum /
      static_cast<double>(telemetry.imbalance_windows));
}

bool ShardedEngine::await(std::size_t s) {
  if (telemetry_ == nullptr) return barrier_->arrive_and_wait();
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  const bool alive = barrier_->arrive_and_wait();
  telemetry_->barrier_wait_ns[s]->add(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           start)
          .count()));
  return alive;
}

void ShardedEngine::worker(std::size_t s, const DriveGoal& goal) {
  try {
    Engine& engine = *engines_[s];
    for (;;) {
      next_times_[s] = engine.next_event_time();
      if (!await(s)) return;  // A: next-times published
      if (s == 0) decide(goal);
      if (!await(s)) return;  // B: decision published
      const Decision decision = decision_;
      if (decision.kind == DecisionKind::kFinished) return;
      if (decision.kind == DecisionKind::kParallel) {
        engine.run_window(decision.bound);
      } else if (s == 0) {
        run_serial(goal);
      }
      if (!await(s)) return;  // C: window quiesced
      if (s == 0 && decision.kind == DecisionKind::kParallel) seal_window();
      if (!await(s)) return;  // D: ranks + mail sealed
    }
  } catch (...) {
    // Release every other shard (they observe the kill and unwind
    // normally) and let parallel_for surface this exception.
    barrier_->kill();
    throw;
  }
}

void ShardedEngine::decide(const DriveGoal& goal) {
  if (goal.done()) {
    decision_ = Decision{DecisionKind::kFinished, 0.0};
    return;
  }
  SimTime t_min = kTimeInfinity;
  for (const SimTime t : next_times_) t_min = std::min(t_min, t);
  if (goal.until < kTimeInfinity && t_min >= goal.until) {
    // Open-loop cutoff: no pending event anywhere is earlier than `until`,
    // so the executed-event set (everything < until) is complete.
    decision_ = Decision{DecisionKind::kFinished, 0.0};
    return;
  }
  GRIDLB_REQUIRE(t_min < kTimeInfinity, "event queue drained with tasks missing");
  GRIDLB_REQUIRE(t_min <= horizon_, "experiment exceeded the horizon limit");
  // Clamping the window to `until` keeps cut-off events out of the shard
  // windows entirely, so a time-bounded run executes the identical event
  // set at any shard count.
  const SimTime bound = std::min(t_min + lookahead_, goal.until);
  const std::uint64_t remaining = goal.remaining();
  std::uint64_t due = 0;
  for (const auto& engine : engines_) {
    due += engine->count_milestones_below(bound, remaining - due);
    if (due >= remaining) break;
  }
  // If every still-needed completion could fire inside this window, run it
  // serially so the simulation stops at exactly the same event as a
  // single-queue run would.
  decision_ = Decision{remaining > 0 && due >= remaining
                           ? DecisionKind::kSerial
                           : DecisionKind::kParallel,
                       bound};
}

void ShardedEngine::run_serial(const DriveGoal& goal) {
  if (telemetry_ != nullptr) {
    // Close the parallel-window accounting before serial stepping so the
    // tail's events land in shard.<s>.serial_events, not a window delta.
    flush_window_telemetry();
    telemetry_->serial_entries->add(1);
  }
  for (auto& engine : engines_) engine->set_serial_finalize(true);
  while (!goal.done()) {
    std::size_t best = engines_.size();
    Engine::PeekKey best_key{};
    for (std::size_t s = 0; s < engines_.size(); ++s) {
      const auto key = engines_[s]->peek_key();
      if (key.has_value() && (best == engines_.size() || *key < best_key)) {
        best = s;
        best_key = *key;
      }
    }
    if (best == engines_.size()) {
      GRIDLB_REQUIRE(goal.until < kTimeInfinity,
                     "event queue drained with tasks missing");
      break;
    }
    if (best_key.at >= goal.until) break;  // open-loop cutoff
    GRIDLB_REQUIRE(best_key.at <= horizon_,
                   "experiment exceeded the horizon limit");
    engines_[best]->step();
    drain_outboxes();
  }
  for (auto& engine : engines_) engine->set_serial_finalize(false);
  if (telemetry_ != nullptr) {
    for (std::size_t s = 0; s < engines_.size(); ++s) {
      const std::uint64_t processed = engines_[s]->events_processed();
      const std::uint64_t delta = processed - telemetry_->window_base[s];
      telemetry_->window_base[s] = processed;
      telemetry_->events[s]->add(delta);
      telemetry_->serial_events[s]->add(delta);
    }
  }
}

void ShardedEngine::seal_window() {
  if (telemetry_ != nullptr) {
    telemetry_->windows->add(1);
    flush_window_telemetry();
  }
  // K-way merge of the shards' window execution logs in lineage-key order,
  // assigning global ranks.  By the time a record reaches the head of its
  // shard's log its parent is always finalized: same-shard parents appear
  // earlier in the log, cross-shard parents executed in an earlier
  // (already-sealed) window.
  std::vector<std::size_t> pos(engines_.size(), 0);
  std::vector<std::vector<ExecRecordPtr>*> logs(engines_.size());
  for (std::size_t s = 0; s < engines_.size(); ++s) {
    logs[s] = &engines_[s]->window_records();
  }
  const auto precedes = [](const ExecRecord& a, const ExecRecord& b) {
    GRIDLB_ASSERT(a.parent != nullptr && a.parent->finalized);
    GRIDLB_ASSERT(b.parent != nullptr && b.parent->finalized);
    if (a.at != b.at) return a.at < b.at;
    if (a.parent->rank != b.parent->rank) {
      return a.parent->rank < b.parent->rank;
    }
    return a.idx < b.idx;
  };
  for (;;) {
    std::size_t best = engines_.size();
    for (std::size_t s = 0; s < engines_.size(); ++s) {
      if (pos[s] >= logs[s]->size()) continue;
      if (best == engines_.size() ||
          precedes(*(*logs[s])[pos[s]], *(*logs[best])[pos[best]])) {
        best = s;
      }
    }
    if (best == engines_.size()) break;
    ExecRecord& record = *(*logs[best])[pos[best]++];
    record.rank = shared_.next_gidx++;
    record.finalized = true;
    record.parent.reset();  // genealogy chains stay bounded
  }
  for (auto* log : logs) log->clear();
  drain_outboxes();
}

void ShardedEngine::drain_outboxes() {
  for (std::size_t src = 0; src < outbox_.size(); ++src) {
    auto& box = outbox_[src];
    if (telemetry_ != nullptr && !box.empty()) {
      telemetry_->outbox_messages[src]->add(box.size());
    }
    for (auto& posted : box) {
      engines_[posted.dest]->inject(posted.at, posted.ref,
                                    std::move(posted.fn));
    }
    box.clear();
  }
}

}  // namespace gridlb::sim
