#include "sim/engine.hpp"

#include <cmath>
#include <memory>

#include "common/assert.hpp"
#include "common/sim_clock.hpp"

namespace gridlb::sim {

namespace {
// Periodic-chain ids carry the top bit so they never collide with (or
// linger in the cancellation set of) queued event ids.
constexpr EventId kChainBit = EventId{1} << 63;

thread_local Engine* tls_current_engine = nullptr;
}  // namespace

Engine::Engine(LineageShared* shared, std::size_t shard_index)
    : shared_(shared), shard_index_(shard_index) {
  GRIDLB_REQUIRE(shared != nullptr, "lineage engine needs shared state");
}

Engine* Engine::current() { return tls_current_engine; }

const ExecRecordPtr& Engine::current_record() {
  GRIDLB_ASSERT(shared_ != nullptr && executing_);
  if (!exec_record_) {
    exec_record_ = std::make_shared<ExecRecord>();
    exec_record_->at = now_;
    exec_record_->idx = exec_idx_;
    if (serial_finalize_) {
      exec_record_->rank = shared_->next_gidx++;
      exec_record_->finalized = true;
    } else {
      exec_record_->parent = exec_parent_;
      exec_record_->rank = local_exec_seq_;
      window_records_.push_back(exec_record_);
    }
  }
  return exec_record_;
}

void Engine::push_entry(SimTime at, EventFn fn, EventId id) {
  Entry entry{at, next_sequence_++, id, std::move(fn), nullptr, 0};
  if (shared_ != nullptr) {
    if (executing_) {
      entry.parent = current_record();
      entry.idx = child_counter_++;
    } else {
      // Setup-time schedule: a child of genesis.  Cross-engine scheduling
      // from inside an event must go through the coordinator instead — a
      // genesis child created mid-run would jump the global order.
      GRIDLB_REQUIRE(tls_current_engine == nullptr,
                     "cross-shard schedule must go through the coordinator");
      entry.parent = shared_->genesis;
      entry.idx = shared_->next_setup_idx++;
    }
  }
  queue_.push(std::move(entry));
}

EventId Engine::schedule_at(SimTime at, EventFn fn) {
  GRIDLB_REQUIRE(std::isfinite(at), "event time must be finite");
  GRIDLB_REQUIRE(at >= now_, "cannot schedule an event in the past");
  GRIDLB_REQUIRE(fn != nullptr, "event callback must be set");
  const EventId id = next_id_++;
  push_entry(at, std::move(fn), id);
  return id;
}

EventId Engine::schedule_in(SimTime delay, EventFn fn) {
  GRIDLB_REQUIRE(delay >= 0.0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Engine::schedule_milestone_at(SimTime at, EventFn fn) {
  if (shared_ == nullptr) return schedule_at(at, std::move(fn));
  // The lead guarantee is what lets the coordinator count due milestones at
  // a barrier and know the stop predicate cannot flip inside the window it
  // is about to open.
  GRIDLB_REQUIRE(at >= now_ + milestone_lead_,
                 "milestone scheduled inside the lookahead window");
  pending_milestones_.insert(at);
  return schedule_at(at, [this, at, fn = std::move(fn)]() {
    pending_milestones_.erase(pending_milestones_.find(at));
    fn();
  });
}

std::uint64_t Engine::count_milestones_below(SimTime bound,
                                             std::uint64_t cap) const {
  std::uint64_t count = 0;
  for (auto it = pending_milestones_.begin();
       it != pending_milestones_.end() && *it < bound && count < cap; ++it) {
    ++count;
  }
  return count;
}

EventId Engine::schedule_periodic(SimTime start, SimTime period, EventFn fn) {
  GRIDLB_REQUIRE(period > 0.0, "period must be positive");
  // The chain id lives in its own id space and is never placed on the
  // queue; the recurring lambda consults cancelled_chains_ before each
  // firing.
  const EventId chain_id = kChainBit | next_chain_++;
  // Owning the callback via shared_ptr lets the lambda reschedule itself.
  auto shared_fn = std::make_shared<EventFn>(std::move(fn));
  auto tick = std::make_shared<EventFn>();
  *tick = [this, chain_id, period, shared_fn, tick]() {
    if (cancelled_chains_.contains(chain_id)) {
      cancelled_chains_.erase(chain_id);
      return;
    }
    (*shared_fn)();
    if (cancelled_chains_.contains(chain_id)) {
      cancelled_chains_.erase(chain_id);
      return;
    }
    schedule_at(now_ + period, *tick);
  };
  schedule_at(start, *tick);
  return chain_id;
}

bool Engine::cancel(EventId id) {
  if (id & kChainBit) {
    const EventId chain = id & ~kChainBit;
    if (chain == 0 || chain >= next_chain_) return false;
    cancelled_chains_.insert(id);
    return true;
  }
  if (id == 0 || id >= next_id_) return false;
  cancelled_.insert(id);
  return true;
}

void Engine::pop_cancelled() const {
  // O(1) steady state: once every recorded cancellation has been matched
  // against its queue entry the set is empty and the sweep is a single
  // branch, no matter how often next_event_time() is polled.
  if (cancelled_.empty()) return;
  while (!queue_.empty() && cancelled_.contains(queue_.top().id)) {
    cancelled_.erase(queue_.top().id);
    queue_.pop();
    ++events_swept_;
  }
}

bool Engine::step() {
  pop_cancelled();
  if (queue_.empty()) return false;
  // Copy out before popping: the callback may schedule new events and the
  // top() reference would dangle across a push.
  Entry entry = queue_.top();
  queue_.pop();
  GRIDLB_ASSERT(entry.at >= now_);
  now_ = entry.at;
  // Publish the clock for off-engine consumers (logger sim-time prefixes,
  // trace events emitted from thread-pool workers) and the executing shard
  // for trace-event stamping (0 = unsharded).
  simclock::publish(now_);
  simclock::publish_shard(
      shared_ != nullptr ? static_cast<std::uint16_t>(shard_index_ + 1) : 0);
  ++events_processed_;
  Engine* const previous = tls_current_engine;
  tls_current_engine = this;
  if (shared_ != nullptr) {
    executing_ = true;
    exec_parent_ = std::move(entry.parent);
    exec_idx_ = entry.idx;
    exec_record_.reset();
    ++local_exec_seq_;
    child_counter_ = 0;
  }
  entry.fn();
  if (shared_ != nullptr) {
    executing_ = false;
    exec_parent_.reset();
    exec_record_.reset();
  }
  tls_current_engine = previous;
  return true;
}

Engine::ChildRef Engine::make_child_ref() {
  GRIDLB_ASSERT(shared_ != nullptr);
  if (executing_) return ChildRef{current_record(), child_counter_++};
  GRIDLB_REQUIRE(tls_current_engine == nullptr,
                 "cross-shard schedule must go through the coordinator");
  return ChildRef{shared_->genesis, shared_->next_setup_idx++};
}

void Engine::inject(SimTime at, ChildRef ref, EventFn fn) {
  GRIDLB_ASSERT(shared_ != nullptr);
  GRIDLB_REQUIRE(std::isfinite(at), "event time must be finite");
  GRIDLB_REQUIRE(at >= now_, "injected event is before the shard clock");
  GRIDLB_REQUIRE(ref.parent != nullptr, "injected event needs a lineage ref");
  GRIDLB_REQUIRE(fn != nullptr, "event callback must be set");
  queue_.push(
      Entry{at, next_sequence_++, next_id_++, std::move(fn), ref.parent, ref.idx});
}

void Engine::run_window(SimTime bound) {
  for (;;) {
    pop_cancelled();
    if (queue_.empty() || queue_.top().at >= bound) return;
    step();
  }
}

std::optional<Engine::PeekKey> Engine::peek_key() const {
  pop_cancelled();
  if (queue_.empty()) return std::nullopt;
  const Entry& top = queue_.top();
  GRIDLB_ASSERT(top.parent != nullptr && top.parent->finalized);
  return PeekKey{top.at, top.parent->rank, top.idx};
}

bool Engine::has_pending() const {
  pop_cancelled();
  return !queue_.empty();
}

SimTime Engine::next_event_time() const {
  pop_cancelled();
  return queue_.empty() ? kTimeInfinity : queue_.top().at;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(SimTime until) {
  GRIDLB_REQUIRE(until >= now_, "run_until target is in the past");
  for (;;) {
    pop_cancelled();
    if (queue_.empty() || queue_.top().at > until) break;
    step();
  }
  now_ = until;
  simclock::publish(now_);
}

}  // namespace gridlb::sim
