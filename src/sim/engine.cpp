#include "sim/engine.hpp"

#include <cmath>
#include <memory>

#include "common/assert.hpp"
#include "common/sim_clock.hpp"

namespace gridlb::sim {

EventId Engine::schedule_at(SimTime at, EventFn fn) {
  GRIDLB_REQUIRE(std::isfinite(at), "event time must be finite");
  GRIDLB_REQUIRE(at >= now_, "cannot schedule an event in the past");
  GRIDLB_REQUIRE(fn != nullptr, "event callback must be set");
  const EventId id = next_id_++;
  queue_.push(Entry{at, next_sequence_++, id, std::move(fn)});
  return id;
}

EventId Engine::schedule_in(SimTime delay, EventFn fn) {
  GRIDLB_REQUIRE(delay >= 0.0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Engine::schedule_periodic(SimTime start, SimTime period, EventFn fn) {
  GRIDLB_REQUIRE(period > 0.0, "period must be positive");
  // The chain id is a fresh event id that is never placed on the queue; the
  // recurring lambda consults cancelled_chains_ before each firing.
  const EventId chain_id = next_id_++;
  // Owning the callback via shared_ptr lets the lambda reschedule itself.
  auto shared_fn = std::make_shared<EventFn>(std::move(fn));
  auto tick = std::make_shared<EventFn>();
  *tick = [this, chain_id, period, shared_fn, tick]() {
    if (cancelled_chains_.contains(chain_id)) {
      cancelled_chains_.erase(chain_id);
      return;
    }
    (*shared_fn)();
    if (cancelled_chains_.contains(chain_id)) {
      cancelled_chains_.erase(chain_id);
      return;
    }
    schedule_at(now_ + period, *tick);
  };
  schedule_at(start, *tick);
  return chain_id;
}

bool Engine::cancel(EventId id) {
  // A chain id is >= 1 and was never enqueued; for simplicity we record the
  // cancellation in both sets — whichever matches takes effect, the other
  // entry is harmless and cleaned up lazily.
  if (id == 0 || id >= next_id_) return false;
  cancelled_.insert(id);
  cancelled_chains_.insert(id);
  return true;
}

void Engine::pop_cancelled() const {
  while (!queue_.empty() && cancelled_.contains(queue_.top().id)) {
    cancelled_.erase(queue_.top().id);
    queue_.pop();
  }
}

bool Engine::step() {
  pop_cancelled();
  if (queue_.empty()) return false;
  // Copy out before popping: the callback may schedule new events and the
  // top() reference would dangle across a push.
  Entry entry = queue_.top();
  queue_.pop();
  GRIDLB_ASSERT(entry.at >= now_);
  now_ = entry.at;
  // Publish the clock for off-engine consumers (logger sim-time prefixes,
  // trace events emitted from thread-pool workers).
  simclock::publish(now_);
  ++events_processed_;
  entry.fn();
  return true;
}

bool Engine::has_pending() const {
  pop_cancelled();
  return !queue_.empty();
}

SimTime Engine::next_event_time() const {
  pop_cancelled();
  return queue_.empty() ? kTimeInfinity : queue_.top().at;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(SimTime until) {
  GRIDLB_REQUIRE(until >= now_, "run_until target is in the past");
  for (;;) {
    pop_cancelled();
    if (queue_.empty() || queue_.top().at > until) break;
    step();
  }
  now_ = until;
  simclock::publish(now_);
}

}  // namespace gridlb::sim
