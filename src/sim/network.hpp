// Simulated message-passing network.
//
// The paper's agents are Java processes exchanging XML documents over TCP
// (each identified by an address/port tuple, Fig. 5).  Here an endpoint is
// registered with the same address/port identity and a delivery handler;
// `send` delivers the payload after a configurable latency through the
// discrete-event engine.  Message and byte counters support the
// scalability ablation ("the system has no central structure which might
// act as a potential bottleneck").
//
// Fault injection (DESIGN.md §10): an optional, seeded FaultPlan makes the
// network unreliable — per-message Bernoulli loss, uniform latency jitter,
// timed partitions, and per-endpoint outages (crashed agents).  All knobs
// default to "perfect delivery"; with an inactive plan `send` performs no
// RNG draws and the delivery schedule is bit-for-bit identical to a
// network built without a plan.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/engine.hpp"

namespace gridlb::sim {

/// Opaque endpoint handle (dense index into the endpoint table).
using EndpointId = std::uint32_t;

/// One delivered message.
struct Message {
  EndpointId from = 0;
  EndpointId to = 0;
  std::string payload;   ///< Serialised XML document in the agent protocol.
  SimTime sent_at = 0.0;
  SimTime delivered_at = 0.0;
};

/// Per-endpoint traffic statistics.
struct EndpointStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// Deterministic network-fault model.  Faults are drawn from a dedicated
/// seeded RNG stream in send order, so a fixed (plan, workload) pair
/// yields the same losses and jitters on every run.
struct FaultPlan {
  /// Probability that any one message is silently lost in transit.
  double drop_prob = 0.0;
  /// Extra one-way delay, uniform in [0, jitter_max) seconds.
  double jitter_max = 0.0;
  std::uint64_t seed = 1;  ///< fault RNG stream (independent of workload)
  /// A timed partition: while `from <= now < until`, messages crossing the
  /// island boundary (one side's address inside `island`, the other's
  /// outside) are dropped in both directions.
  struct Partition {
    std::vector<std::string> island;  ///< endpoint addresses on one side
    SimTime from = 0.0;
    SimTime until = 0.0;
  };
  std::vector<Partition> partitions;

  /// True when any fault source is configured; an inactive plan keeps the
  /// network on the perfect-delivery path (no RNG draws at all).
  [[nodiscard]] bool active() const {
    return drop_prob > 0.0 || jitter_max > 0.0 || !partitions.empty();
  }
};

/// Injected-fault accounting, network-wide.
struct FaultStats {
  std::uint64_t dropped_random = 0;     ///< Bernoulli losses
  std::uint64_t dropped_partition = 0;  ///< partition-window losses
  std::uint64_t dropped_endpoint_down = 0;  ///< recipient was down
  [[nodiscard]] std::uint64_t dropped_total() const {
    return dropped_random + dropped_partition + dropped_endpoint_down;
  }
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  /// `latency` is the one-way delivery delay applied to every message;
  /// `plan` (optional) injects deterministic faults on top of it.
  Network(Engine& engine, double latency_seconds, FaultPlan plan = {});

  /// Registers an endpoint; `address`/`port` mirror the identity tuple the
  /// paper's documents carry.  The handler runs when a message arrives.
  EndpointId register_endpoint(std::string address, int port, Handler handler);

  /// Queues `payload` for delivery to `to` after the network latency
  /// (plus jitter).  Under an active fault plan the message may instead be
  /// dropped; senders that need delivery guarantees must retry (see
  /// agents::ReliableLink).
  void send(EndpointId from, EndpointId to, std::string payload);

  /// Marks an endpoint up or down (a crashed agent process).  Messages
  /// arriving at a down endpoint are dropped at delivery time, so traffic
  /// already in flight when the endpoint fails is lost with it.
  void set_endpoint_up(EndpointId id, bool up);
  [[nodiscard]] bool endpoint_up(EndpointId id) const;

  [[nodiscard]] double latency() const { return latency_; }
  [[nodiscard]] std::size_t endpoint_count() const { return endpoints_.size(); }
  [[nodiscard]] const EndpointStats& stats(EndpointId id) const;
  [[nodiscard]] std::uint64_t total_messages() const { return total_messages_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] const FaultPlan& fault_plan() const { return plan_; }
  [[nodiscard]] const FaultStats& fault_stats() const { return fault_stats_; }

  /// Identity lookup for serialising Fig. 5 / Fig. 6 documents.
  [[nodiscard]] const std::string& address(EndpointId id) const;
  [[nodiscard]] int port(EndpointId id) const;

 private:
  struct Endpoint {
    std::string address;
    int port;
    Handler handler;
    EndpointStats stats;
    bool up = true;
  };

  /// True if a partition window currently separates the two endpoints.
  [[nodiscard]] bool partitioned(EndpointId from, EndpointId to) const;

  Engine& engine_;
  double latency_;
  FaultPlan plan_;
  /// Engaged only while the plan is active, so the perfect-delivery path
  /// never draws (and a plan-less network never pays for the state).
  std::optional<Rng> fault_rng_;
  std::vector<Endpoint> endpoints_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  FaultStats fault_stats_;
};

}  // namespace gridlb::sim
