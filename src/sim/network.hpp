// Simulated message-passing network.
//
// The paper's agents are Java processes exchanging XML documents over TCP
// (each identified by an address/port tuple, Fig. 5).  Here an endpoint is
// registered with the same address/port identity and a delivery handler;
// `send` delivers the payload after a configurable latency through the
// discrete-event engine.  Message and byte counters support the
// scalability ablation ("the system has no central structure which might
// act as a potential bottleneck").
//
// Fault injection (DESIGN.md §10): an optional, seeded FaultPlan makes the
// network unreliable — per-message Bernoulli loss, uniform latency jitter,
// timed partitions, and per-endpoint outages (crashed agents).  All knobs
// default to "perfect delivery"; with an inactive plan `send` performs no
// RNG draws and the delivery schedule is bit-for-bit identical to a
// network built without a plan.
//
// Sharding (DESIGN.md §13): every endpoint is pinned to the shard that was
// current at registration time, and all mutable accounting (traffic stats,
// fault counters) lives per endpoint so each shard only writes state it
// owns.  Fault draws are stateless — each message's loss/jitter comes from
// a hash of (plan seed, sender, sender's send ordinal), not from a shared
// stream — so the fault pattern is independent of the global send
// interleaving and therefore of the shard count.  Cross-shard deliveries
// route through the shard coordinator, which is what turns the network
// latency into the conservative-lookahead window.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/engine.hpp"

namespace gridlb::sim {

class ShardedEngine;

/// Opaque endpoint handle (dense index into the endpoint table).
using EndpointId = std::uint32_t;

/// One delivered message.
struct Message {
  EndpointId from = 0;
  EndpointId to = 0;
  std::string payload;   ///< Serialised XML document in the agent protocol.
  SimTime sent_at = 0.0;
  SimTime delivered_at = 0.0;
};

/// Per-endpoint traffic statistics.
struct EndpointStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// Deterministic network-fault model.  Each message's faults are drawn
/// from a stateless hash of (seed, sender, sender send ordinal), so a
/// fixed (plan, workload) pair yields the same losses and jitters on every
/// run — at any shard count.
struct FaultPlan {
  /// Probability that any one message is silently lost in transit.
  double drop_prob = 0.0;
  /// Extra one-way delay, uniform in [0, jitter_max) seconds.
  double jitter_max = 0.0;
  std::uint64_t seed = 1;  ///< fault RNG stream (independent of workload)
  /// A timed partition: while `from <= now < until`, messages crossing the
  /// island boundary (one side's address inside `island`, the other's
  /// outside) are dropped in both directions.
  struct Partition {
    std::vector<std::string> island;  ///< endpoint addresses on one side
    SimTime from = 0.0;
    SimTime until = 0.0;
  };
  std::vector<Partition> partitions;

  /// True when any fault source is configured; an inactive plan keeps the
  /// network on the perfect-delivery path (no RNG draws at all).
  [[nodiscard]] bool active() const {
    return drop_prob > 0.0 || jitter_max > 0.0 || !partitions.empty();
  }
};

/// Injected-fault accounting, network-wide.
struct FaultStats {
  std::uint64_t dropped_random = 0;     ///< Bernoulli losses
  std::uint64_t dropped_partition = 0;  ///< partition-window losses
  std::uint64_t dropped_endpoint_down = 0;  ///< recipient was down
  [[nodiscard]] std::uint64_t dropped_total() const {
    return dropped_random + dropped_partition + dropped_endpoint_down;
  }
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  /// `latency` is the one-way delivery delay applied to every message;
  /// `plan` (optional) injects deterministic faults on top of it.
  Network(Engine& engine, double latency_seconds, FaultPlan plan = {});

  /// Routes cross-shard deliveries through `router` (whose lookahead must
  /// not exceed this network's latency).  Without a router every delivery
  /// is scheduled directly on the sending context's engine.
  void attach_router(ShardedEngine* router);

  /// Shard assigned to endpoints registered from now on.
  void set_registration_shard(std::size_t shard) {
    registration_shard_ = shard;
  }

  /// Registers an endpoint; `address`/`port` mirror the identity tuple the
  /// paper's documents carry.  The handler runs when a message arrives.
  EndpointId register_endpoint(std::string address, int port, Handler handler);

  /// Queues `payload` for delivery to `to` after the network latency
  /// (plus jitter).  Under an active fault plan the message may instead be
  /// dropped; senders that need delivery guarantees must retry (see
  /// agents::ReliableLink).
  void send(EndpointId from, EndpointId to, std::string payload);

  /// Marks an endpoint up or down (a crashed agent process).  Messages
  /// arriving at a down endpoint are dropped at delivery time, so traffic
  /// already in flight when the endpoint fails is lost with it.
  void set_endpoint_up(EndpointId id, bool up);
  [[nodiscard]] bool endpoint_up(EndpointId id) const;

  [[nodiscard]] double latency() const { return latency_; }
  [[nodiscard]] std::size_t endpoint_count() const { return endpoints_.size(); }
  [[nodiscard]] const EndpointStats& stats(EndpointId id) const;
  [[nodiscard]] std::size_t endpoint_shard(EndpointId id) const;
  /// Network-wide totals, summed over the per-endpoint accounting.
  [[nodiscard]] std::uint64_t total_messages() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] const FaultPlan& fault_plan() const { return plan_; }
  [[nodiscard]] FaultStats fault_stats() const;

  /// Identity lookup for serialising Fig. 5 / Fig. 6 documents.
  [[nodiscard]] const std::string& address(EndpointId id) const;
  [[nodiscard]] int port(EndpointId id) const;

 private:
  struct Endpoint {
    std::string address;
    int port;
    Handler handler;
    EndpointStats stats;
    // Random/partition drops are charged to the sender, endpoint-down
    // drops to the recipient, so each counter has exactly one writing
    // shard.
    FaultStats faults;
    std::size_t shard = 0;
    bool up = true;
  };

  /// True if a partition window at time `now` separates the two endpoints.
  [[nodiscard]] bool partitioned(EndpointId from, EndpointId to,
                                 SimTime now) const;

  Engine& engine_;
  ShardedEngine* router_ = nullptr;
  std::size_t registration_shard_ = 0;
  double latency_;
  FaultPlan plan_;
  std::vector<Endpoint> endpoints_;
};

}  // namespace gridlb::sim
