// Simulated message-passing network.
//
// The paper's agents are Java processes exchanging XML documents over TCP
// (each identified by an address/port tuple, Fig. 5).  Here an endpoint is
// registered with the same address/port identity and a delivery handler;
// `send` delivers the payload after a configurable latency through the
// discrete-event engine.  Message and byte counters support the
// scalability ablation ("the system has no central structure which might
// act as a potential bottleneck").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"

namespace gridlb::sim {

/// Opaque endpoint handle (dense index into the endpoint table).
using EndpointId = std::uint32_t;

/// One delivered message.
struct Message {
  EndpointId from = 0;
  EndpointId to = 0;
  std::string payload;   ///< Serialised XML document in the agent protocol.
  SimTime sent_at = 0.0;
  SimTime delivered_at = 0.0;
};

/// Per-endpoint traffic statistics.
struct EndpointStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  /// `latency` is the one-way delivery delay applied to every message.
  Network(Engine& engine, double latency_seconds);

  /// Registers an endpoint; `address`/`port` mirror the identity tuple the
  /// paper's documents carry.  The handler runs when a message arrives.
  EndpointId register_endpoint(std::string address, int port, Handler handler);

  /// Queues `payload` for delivery to `to` after the network latency.
  void send(EndpointId from, EndpointId to, std::string payload);

  [[nodiscard]] double latency() const { return latency_; }
  [[nodiscard]] std::size_t endpoint_count() const { return endpoints_.size(); }
  [[nodiscard]] const EndpointStats& stats(EndpointId id) const;
  [[nodiscard]] std::uint64_t total_messages() const { return total_messages_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

  /// Identity lookup for serialising Fig. 5 / Fig. 6 documents.
  [[nodiscard]] const std::string& address(EndpointId id) const;
  [[nodiscard]] int port(EndpointId id) const;

 private:
  struct Endpoint {
    std::string address;
    int port;
    Handler handler;
    EndpointStats stats;
  };

  Engine& engine_;
  double latency_;
  std::vector<Endpoint> endpoints_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace gridlb::sim
