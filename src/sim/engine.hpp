// Discrete-event simulation engine.
//
// This is the substrate that replaces the paper's physical testbed: every
// timed behaviour in the system — request arrivals at the portal, periodic
// service-advertisement pulls, message delivery between agents, task
// completions on processing nodes — is an event on this queue.  The paper's
// "test mode" ("tasks are not actually executed and the predictive
// application execution times are scheduled and assumed to be accurate")
// maps directly onto virtual-time task-completion events.
//
// Determinism: events at equal times fire in scheduling order (a strictly
// increasing sequence number breaks ties), so a fixed workload seed yields
// bit-identical runs.
//
// Sharded mode (see sharded_engine.hpp): when an engine is constructed with
// a LineageShared block it becomes one shard of a partitioned simulation and
// switches the equal-time tie-break from the global sequence number (which a
// partitioned run cannot reproduce) to the *lineage key*
//
//     (at, parent-event's global execution rank, child index)
//
// where the parent is the event whose callback scheduled this one and the
// child index counts that callback's schedules in call order.  For a
// single queue this orders equal-time events exactly like the sequence
// number does (children of an earlier-executed parent were pushed first),
// so the key is a partition-independent restatement of today's contract —
// which is what makes shard-count invariance possible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace gridlb::sim {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

/// Callback invoked when an event fires.  The engine's clock already shows
/// the event's timestamp when the callback runs.
using EventFn = std::function<void()>;

/// Execution record of one fired event under lineage ordering.  Pending
/// children hold a shared_ptr to their parent's record so the comparator can
/// consult the parent's rank.  `rank` starts as a shard-local provisional
/// execution index and is rewritten to a global rank (gidx) when the shard
/// coordinator seals the window the event ran in; `finalized` flips at the
/// same moment and the parent pointer is released so genealogy chains do
/// not accumulate.
struct ExecRecord {
  SimTime at = 0.0;
  std::shared_ptr<ExecRecord> parent;
  std::uint64_t idx = 0;
  std::uint64_t rank = 0;
  bool finalized = false;
};
using ExecRecordPtr = std::shared_ptr<ExecRecord>;

/// State shared by every shard engine of one partitioned simulation: the
/// genesis record (parent of all setup-time schedules, so single-threaded
/// scenario construction keeps its exact serial order regardless of which
/// shard each call lands on) and the global rank counter used when windows
/// are sealed.
struct LineageShared {
  LineageShared() : genesis(std::make_shared<ExecRecord>()) {
    genesis->finalized = true;  // rank 0, the root of every lineage chain
  }
  ExecRecordPtr genesis;
  std::uint64_t next_setup_idx = 0;  // child index under genesis
  std::uint64_t next_gidx = 1;       // next global execution rank
};

class Engine {
 public:
  Engine() = default;
  /// Lineage-mode constructor: this engine is shard `shard_index` of a
  /// partitioned simulation sharing `shared` (owned by the coordinator).
  Engine(LineageShared* shared, std::size_t shard_index);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.  Starts at 0.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now).  Returns a handle
  /// usable with `cancel`.
  EventId schedule_at(SimTime at, EventFn fn);

  /// Schedules `fn` after a relative delay `delay` (>= 0).
  EventId schedule_in(SimTime delay, EventFn fn);

  /// Schedules `fn` every `period` seconds starting at `start`.  The
  /// returned id cancels the *whole* periodic chain.
  EventId schedule_periodic(SimTime start, SimTime period, EventFn fn);

  /// Schedules a *milestone* event — one whose execution can flip the
  /// simulation's stop predicate (task completions).  In lineage mode the
  /// event must be at least the configured milestone lead in the future so
  /// the shard coordinator can count due milestones at a synchronization
  /// barrier and know the predicate cannot flip mid-window; in sequence
  /// mode this is exactly schedule_at.
  EventId schedule_milestone_at(SimTime at, EventFn fn);

  /// Cancels a pending event (or periodic chain).  Returns false if the
  /// event already fired or was never scheduled.
  bool cancel(EventId id);

  /// Runs until the queue is empty.
  void run();

  /// Runs events with timestamp <= `until`; the clock ends at `until` (or
  /// at the last event, whichever is later... the clock never runs
  /// backwards).
  void run_until(SimTime until);

  /// Processes exactly one event; returns false if the queue was empty.
  bool step();

  /// True if any events remain pending.
  [[nodiscard]] bool has_pending() const;

  /// Timestamp of the next pending event (kTimeInfinity when idle).
  [[nodiscard]] SimTime next_event_time() const;

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

  /// Number of cancelled entries discarded by the lazy sweep so far.
  [[nodiscard]] std::uint64_t events_swept() const { return events_swept_; }

  // --- Shard-coordinator interface (lineage mode only) -------------------

  /// The engine currently executing an event on this thread, or nullptr
  /// outside any callback.  Lets code reached from an event (network sends,
  /// completion sinks) find its shard without threading the engine through
  /// every call site.
  [[nodiscard]] static Engine* current();

  [[nodiscard]] std::size_t shard_index() const { return shard_index_; }
  [[nodiscard]] bool lineage_mode() const { return shared_ != nullptr; }

  /// Exec record of the event currently executing on this engine (lineage
  /// mode, inside a callback only).  Completion sinks hold it as a ticket
  /// so buffered records can be ordered by finalized global rank later.
  [[nodiscard]] ExecRecordPtr current_record_ticket() {
    return current_record();
  }

  /// Lineage context for an event about to be handed to another shard:
  /// the currently-executing event's record plus the next child index
  /// (genesis context outside any callback, i.e. during scenario setup).
  struct ChildRef {
    ExecRecordPtr parent;
    std::uint64_t idx = 0;
  };
  ChildRef make_child_ref();

  /// Enqueues a cross-shard event carrying an explicit lineage context.
  /// Only the shard coordinator calls this, between windows (single
  /// threaded), so no locking is needed.
  void inject(SimTime at, ChildRef ref, EventFn fn);

  /// Executes every pending event with `at < bound`.  The clock is left at
  /// the last executed event (not advanced to `bound`, matching how a
  /// serial run's clock sits at the last event).
  void run_window(SimTime bound);

  /// Lineage key of the next pending event, for the coordinator's serial
  /// exact-stop phase.  All parents are finalized by then, so the key is a
  /// plain triple.  nullopt when the queue is empty.
  struct PeekKey {
    SimTime at = 0.0;
    std::uint64_t parent_rank = 0;
    std::uint64_t idx = 0;
    [[nodiscard]] bool operator<(const PeekKey& other) const {
      if (at != other.at) return at < other.at;
      if (parent_rank != other.parent_rank) return parent_rank < other.parent_rank;
      return idx < other.idx;
    }
  };
  [[nodiscard]] std::optional<PeekKey> peek_key() const;

  /// Records executed during the current window, in execution order, with
  /// provisional ranks.  The coordinator merges these across shards to
  /// assign global ranks, then calls clear().
  [[nodiscard]] std::vector<ExecRecordPtr>& window_records() {
    return window_records_;
  }

  /// In serial-finalize mode each executed event's record is finalized
  /// immediately from the shared global counter instead of being buffered
  /// in window_records().  Used for the coordinator's exact-stop tail.
  void set_serial_finalize(bool on) { serial_finalize_ = on; }

  /// Minimum lead time enforced by schedule_milestone_at (the coordinator
  /// sets this to the conservative lookahead).
  void set_milestone_lead(SimTime lead) { milestone_lead_ = lead; }

  /// Number of pending milestones strictly below `bound`, counting at most
  /// `cap` (the caller only cares whether the count reaches `cap`).
  [[nodiscard]] std::uint64_t count_milestones_below(SimTime bound,
                                                     std::uint64_t cap) const;

 private:
  struct Entry {
    SimTime at;
    std::uint64_t sequence;
    EventId id;
    EventFn fn;
    // Lineage mode only: scheduling parent + child index.
    ExecRecordPtr parent;
    std::uint64_t idx = 0;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.parent == nullptr || b.parent == nullptr) {
        return a.sequence > b.sequence;
      }
      if (a.parent != b.parent) {
        // Finalized ranks globally precede provisional ones: a provisional
        // parent executed in the current (unsealed) window, strictly after
        // everything already finalized.
        const auto key = [](const ExecRecordPtr& r) {
          return std::pair<std::uint64_t, std::uint64_t>(r->finalized ? 0 : 1,
                                                         r->rank);
        };
        const auto ka = key(a.parent);
        const auto kb = key(b.parent);
        if (ka != kb) return ka > kb;
      }
      return a.idx > b.idx;
    }
  };

  void pop_cancelled() const;
  const ExecRecordPtr& current_record();
  void push_entry(SimTime at, EventFn fn, EventId id);

  // `queue_` and `cancelled_` are mutable so const queries (has_pending,
  // next_event_time) can share pop_cancelled's lazy sweep: discarding a
  // cancelled top entry is observationally pure — the entry could never
  // fire — and beats the previous approach of copying the whole queue
  // (O(n) allocation + O(n log n) pops) per query.
  mutable std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  mutable std::unordered_set<EventId> cancelled_;
  // Periodic chains: chain ids live in their own id space (top bit set) and
  // are never enqueued, so a cancelled chain id never lingers in
  // `cancelled_` poisoning the lazy sweep's O(1) fast path.
  std::unordered_set<EventId> cancelled_chains_;
  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;
  EventId next_chain_ = 1;
  std::uint64_t events_processed_ = 0;
  mutable std::uint64_t events_swept_ = 0;

  // Lineage mode state.
  LineageShared* shared_ = nullptr;
  std::size_t shard_index_ = 0;
  bool executing_ = false;
  bool serial_finalize_ = false;
  ExecRecordPtr exec_parent_;     // parent of the event now executing
  std::uint64_t exec_idx_ = 0;    // its child index under that parent
  ExecRecordPtr exec_record_;     // lazily-created record for that event
  std::uint64_t child_counter_ = 0;
  std::uint64_t local_exec_seq_ = 0;  // provisional ranks within a window
  SimTime milestone_lead_ = 0.0;
  std::vector<ExecRecordPtr> window_records_;
  std::multiset<SimTime> pending_milestones_;
};

}  // namespace gridlb::sim
