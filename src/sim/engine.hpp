// Discrete-event simulation engine.
//
// This is the substrate that replaces the paper's physical testbed: every
// timed behaviour in the system — request arrivals at the portal, periodic
// service-advertisement pulls, message delivery between agents, task
// completions on processing nodes — is an event on this queue.  The paper's
// "test mode" ("tasks are not actually executed and the predictive
// application execution times are scheduled and assumed to be accurate")
// maps directly onto virtual-time task-completion events.
//
// Determinism: events at equal times fire in scheduling order (a strictly
// increasing sequence number breaks ties), so a fixed workload seed yields
// bit-identical runs.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace gridlb::sim {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

/// Callback invoked when an event fires.  The engine's clock already shows
/// the event's timestamp when the callback runs.
using EventFn = std::function<void()>;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.  Starts at 0.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now).  Returns a handle
  /// usable with `cancel`.
  EventId schedule_at(SimTime at, EventFn fn);

  /// Schedules `fn` after a relative delay `delay` (>= 0).
  EventId schedule_in(SimTime delay, EventFn fn);

  /// Schedules `fn` every `period` seconds starting at `start`.  The
  /// returned id cancels the *whole* periodic chain.
  EventId schedule_periodic(SimTime start, SimTime period, EventFn fn);

  /// Cancels a pending event (or periodic chain).  Returns false if the
  /// event already fired or was never scheduled.
  bool cancel(EventId id);

  /// Runs until the queue is empty.
  void run();

  /// Runs events with timestamp <= `until`; the clock ends at `until` (or
  /// at the last event, whichever is later... the clock never runs
  /// backwards).
  void run_until(SimTime until);

  /// Processes exactly one event; returns false if the queue was empty.
  bool step();

  /// True if any events remain pending.
  [[nodiscard]] bool has_pending() const;

  /// Timestamp of the next pending event (kTimeInfinity when idle).
  [[nodiscard]] SimTime next_event_time() const;

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t sequence;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  void pop_cancelled() const;

  // `queue_` and `cancelled_` are mutable so const queries (has_pending,
  // next_event_time) can share pop_cancelled's lazy sweep: discarding a
  // cancelled top entry is observationally pure — the entry could never
  // fire — and beats the previous approach of copying the whole queue
  // (O(n) allocation + O(n log n) pops) per query.
  mutable std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  mutable std::unordered_set<EventId> cancelled_;
  // Periodic chains: map from public chain id to the currently-scheduled
  // underlying event, so cancel() can chase the chain.
  std::unordered_set<EventId> cancelled_chains_;
  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;
  std::uint64_t events_processed_ = 0;
};

}  // namespace gridlb::sim
