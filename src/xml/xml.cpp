#include "xml/xml.hpp"

#include <cctype>
#include <sstream>

#include "common/assert.hpp"

namespace gridlb::xml {

ParseError::ParseError(const std::string& message, std::size_t byte_offset)
    : std::runtime_error(message + " (at byte " + std::to_string(byte_offset) +
                         ")"),
      offset_(byte_offset) {}

void Element::set_attribute(std::string key, std::string value) {
  for (auto& [existing_key, existing_value] : attributes_) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(std::move(key), std::move(value));
}

std::optional<std::string_view> Element::attribute(
    std::string_view key) const {
  for (const auto& [existing_key, value] : attributes_) {
    if (existing_key == key) return value;
  }
  return std::nullopt;
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::add_child_with_text(std::string name, std::string text) {
  Element& child = add_child(std::move(name));
  child.set_text(std::move(text));
  return child;
}

Element& Element::adopt_child(std::unique_ptr<Element> child) {
  GRIDLB_REQUIRE(child != nullptr, "adopt_child requires a non-null child");
  children_.push_back(std::move(child));
  return *children_.back();
}

const Element* Element::child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(
    std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::string Element::child_text(std::string_view name) const {
  const Element* c = child(name);
  return c != nullptr ? c->text() : std::string{};
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char ch : raw) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += ch;
    }
  }
  return out;
}

namespace {

void write_element(std::ostringstream& os, const Element& element, int indent,
                   int depth) {
  const std::string pad =
      indent >= 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                  : std::string{};
  os << pad << '<' << element.name();
  for (const auto& [key, value] : element.attributes()) {
    os << ' ' << key << "=\"" << escape(value) << '"';
  }
  const bool empty = element.children().empty() && element.text().empty();
  if (empty) {
    os << "/>";
    if (indent >= 0) os << '\n';
    return;
  }
  os << '>';
  if (element.children().empty()) {
    os << escape(element.text()) << "</" << element.name() << '>';
    if (indent >= 0) os << '\n';
    return;
  }
  if (indent >= 0) os << '\n';
  if (!element.text().empty()) {
    os << (indent >= 0 ? std::string(
                             static_cast<std::size_t>(indent * (depth + 1)),
                             ' ')
                       : std::string{})
       << escape(element.text());
    if (indent >= 0) os << '\n';
  }
  for (const auto& child : element.children()) {
    write_element(os, *child, indent, depth + 1);
  }
  os << pad << "</" << element.name() << '>';
  if (indent >= 0) os << '\n';
}

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  std::unique_ptr<Element> parse_document() {
    skip_whitespace();
    skip_declaration();
    skip_whitespace();
    auto root = parse_element();
    skip_whitespace();
    if (pos_ != input_.size()) {
      fail("trailing content after document root");
    }
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, pos_);
  }

  [[nodiscard]] bool eof() const { return pos_ >= input_.size(); }
  [[nodiscard]] char peek() const {
    if (eof()) fail("unexpected end of input");
    return input_[pos_];
  }
  char take() {
    const char ch = peek();
    ++pos_;
    return ch;
  }
  void expect(char ch) {
    if (take() != ch) {
      --pos_;
      fail(std::string("expected '") + ch + "'");
    }
  }
  [[nodiscard]] bool looking_at(std::string_view prefix) const {
    return input_.substr(pos_, prefix.size()) == prefix;
  }

  void skip_whitespace() {
    while (!eof() &&
           std::isspace(static_cast<unsigned char>(input_[pos_])) != 0) {
      ++pos_;
    }
  }

  void skip_declaration() {
    if (!looking_at("<?xml")) return;
    const auto end = input_.find("?>", pos_);
    if (end == std::string_view::npos) fail("unterminated XML declaration");
    pos_ = end + 2;
  }

  void skip_comment() {
    if (!looking_at("<!--")) return;
    const auto end = input_.find("-->", pos_ + 4);
    if (end == std::string_view::npos) fail("unterminated comment");
    pos_ = end + 3;
  }

  [[nodiscard]] static bool is_name_char(char ch) {
    return std::isalnum(static_cast<unsigned char>(ch)) != 0 || ch == '_' ||
           ch == '-' || ch == '.' || ch == ':';
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (!eof() && is_name_char(input_[pos_])) ++pos_;
    if (pos_ == start) fail("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const auto semi = raw.find(';', i);
      if (semi == std::string_view::npos) fail("unterminated entity");
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") out += '&';
      else if (entity == "lt") out += '<';
      else if (entity == "gt") out += '>';
      else if (entity == "quot") out += '"';
      else if (entity == "apos") out += '\'';
      else fail("unknown entity &" + std::string(entity) + ";");
      i = semi;
    }
    return out;
  }

  std::string parse_attribute_value() {
    const char quote = take();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    const std::size_t start = pos_;
    while (!eof() && input_[pos_] != quote) ++pos_;
    if (eof()) fail("unterminated attribute value");
    const std::string value =
        decode_entities(input_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return value;
  }

  std::unique_ptr<Element> parse_element() {
    expect('<');
    auto element = std::make_unique<Element>(parse_name());
    // Attributes.
    for (;;) {
      skip_whitespace();
      const char ch = peek();
      if (ch == '/' || ch == '>') break;
      std::string key = parse_name();
      skip_whitespace();
      expect('=');
      skip_whitespace();
      element->set_attribute(std::move(key), parse_attribute_value());
    }
    if (peek() == '/') {
      take();
      expect('>');
      return element;
    }
    expect('>');
    // Content: interleaved text, comments and child elements.
    for (;;) {
      const std::size_t text_start = pos_;
      while (!eof() && input_[pos_] != '<') ++pos_;
      if (pos_ > text_start) {
        const std::string text = decode_entities(
            input_.substr(text_start, pos_ - text_start));
        // Keep interior whitespace but drop pure-indentation runs.
        if (text.find_first_not_of(" \t\r\n") != std::string::npos) {
          std::string trimmed = text;
          const auto first = trimmed.find_first_not_of(" \t\r\n");
          const auto last = trimmed.find_last_not_of(" \t\r\n");
          element->append_text(trimmed.substr(first, last - first + 1));
        }
      }
      if (eof()) fail("unterminated element <" + element->name() + ">");
      if (looking_at("<!--")) {
        skip_comment();
        continue;
      }
      if (looking_at("</")) {
        pos_ += 2;
        const std::string closing = parse_name();
        if (closing != element->name()) {
          fail("mismatched closing tag </" + closing + "> for <" +
               element->name() + ">");
        }
        skip_whitespace();
        expect('>');
        return element;
      }
      element->adopt_child(parse_element());
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string write(const Element& root, int indent) {
  std::ostringstream os;
  write_element(os, root, indent, 0);
  return os.str();
}

std::unique_ptr<Element> parse(std::string_view input) {
  Parser parser(input);
  return parser.parse_document();
}

}  // namespace gridlb::xml
