// Minimal XML document model, writer and parser.
//
// The paper's agents exchange service information (Fig. 5) and request
// documents (Fig. 6) as XML; this module provides just enough XML to
// round-trip those documents faithfully: elements, attributes, text
// content, and the five standard character entities.  It deliberately
// omits namespaces, DTDs, processing instructions and CDATA — the agent
// protocol uses none of them.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gridlb::xml {

/// Thrown by `parse` on malformed input; `what()` includes the byte offset.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t offset);
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One element node.  Children are owned; text interleaved between child
/// elements is concatenated into `text` (document order within mixed
/// content is not preserved — the agent documents never rely on it).
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  // -- attributes ---------------------------------------------------------
  void set_attribute(std::string key, std::string value);
  [[nodiscard]] std::optional<std::string_view> attribute(
      std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  attributes() const {
    return attributes_;
  }

  // -- text ---------------------------------------------------------------
  void set_text(std::string text) { text_ = std::move(text); }
  void append_text(std::string_view text) { text_ += text; }
  [[nodiscard]] const std::string& text() const { return text_; }

  // -- children -----------------------------------------------------------
  Element& add_child(std::string name);
  /// Adds `<name>text</name>` and returns the new child.
  Element& add_child_with_text(std::string name, std::string text);
  /// Takes ownership of an already-built subtree.
  Element& adopt_child(std::unique_ptr<Element> child);
  [[nodiscard]] const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }

  /// First child with the given element name, or nullptr.
  [[nodiscard]] const Element* child(std::string_view name) const;
  /// All children with the given element name, in document order.
  [[nodiscard]] std::vector<const Element*> children_named(
      std::string_view name) const;
  /// Text of the first child with the given name ("" if absent).
  [[nodiscard]] std::string child_text(std::string_view name) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::string text_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// Escapes &, <, >, " and ' for use in text or attribute values.
[[nodiscard]] std::string escape(std::string_view raw);

/// Serialises the element tree.  With `indent >= 0` the output is
/// pretty-printed (children on their own lines); with `indent < 0` it is
/// emitted compactly on one line.
[[nodiscard]] std::string write(const Element& root, int indent = 2);

/// Parses a single-rooted document.  Leading/trailing whitespace and an
/// optional `<?xml ...?>` declaration are accepted.  Throws ParseError.
[[nodiscard]] std::unique_ptr<Element> parse(std::string_view input);

}  // namespace gridlb::xml
