// Reproduces Fig. 10: trends of the load-balancing level β across
// experiments 1-3.  Expected shape (paper §4.2): the GA improves *local*
// balance (per-resource β jumps between experiments 1 and 2) while the
// agent mechanism improves *global* balance (grid-total β jumps between
// experiments 2 and 3) — "the GA scheduling contributes more to local grid
// load balancing and agents contribute more to global grid load
// balancing".

#include <cstdio>

#include "experiment_suite.hpp"

int main() {
  using namespace gridlb;
  const auto results = bench::run_experiment_suite();

  std::printf("Fig. 10 — load balancing level beta (%%) by experiment\n\n");
  bench::print_series(results, "beta%", [](const metrics::MetricsRow& row) {
    return row.balance * 100.0;
  });

  const auto& r = results;
  const auto mean_local = [](const core::ExperimentResult& result) {
    double sum = 0.0;
    for (const auto& row : result.report.resources) sum += row.balance;
    return sum / static_cast<double>(result.report.resources.size());
  };
  std::printf("\nshape checks:\n");
  const auto check = [](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  check(mean_local(r[1]) > mean_local(r[0]),
        "GA lifts mean *local* balance (exp1 -> exp2)");
  check(r[2].report.total.balance - r[1].report.total.balance >
            r[1].report.total.balance - r[0].report.total.balance,
        "agents provide the bigger jump in *global* balance (exp2 -> exp3)");
  check(r[2].report.total.balance > 0.8,
        "coupled system reaches high global balance (paper: 90%)");
  return 0;
}
