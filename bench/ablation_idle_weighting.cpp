// Ablation: front-weighted idle time (paper §2.1).
//
// "Idle time at the front of the schedule is particularly undesirable as
// this is the processing time which will be wasted first, and is least
// likely to be recovered by further iterations of the GA or if more tasks
// are added.  Solutions that have large idle times are penalised by
// weighting pockets of idle time … which penalises early idle time more
// than later idle time."
//
// This bench runs a dynamic arrival stream on one resource with three
// idle-cost variants — front-weighted φ (the paper's), flat idle time, and
// no idle term — and reports how the executed schedules differ.  The
// front-weighted penalty matters precisely because of the dynamics: late
// idle in the *plan* is usually refilled by the next arrivals, early idle
// is lost forever.

#include <cstdio>

#include "core/gridlb.hpp"

namespace {

using namespace gridlb;

struct Outcome {
  double busy_node_seconds = 0.0;
  double horizon = 0.0;
  double lateness = 0.0;
  int misses = 0;
};

// `weight_mode`: 0 = front-weighted (paper), 1 = flat, 2 = no idle term.
// Flat weighting is emulated by noting that φ of a uniformly-spread idle
// profile equals plain idle; we cannot swap the decoder's formula from a
// bench, so "flat" uses a halved weight (φ averages ~1×, front-weighting
// doubles early gaps) and "none" zeroes the idle weight.
Outcome run(double idle_weight) {
  sim::Engine engine;
  pace::EvaluationEngine pace_engine;
  pace::CachedEvaluator evaluator(pace_engine);
  const auto catalogue = pace::paper_catalogue();

  sched::LocalScheduler::Config config;
  config.resource_id = AgentId(1);
  config.resource = pace::ResourceModel::of(pace::HardwareType::kSunUltra1);
  config.node_count = 16;
  config.policy = sched::SchedulerPolicy::kGa;
  config.ga.weights.idle = idle_weight;
  config.seed = 3;

  Outcome outcome;
  sched::LocalScheduler scheduler(
      engine, evaluator, config, [&](const sched::CompletionRecord& r) {
        outcome.busy_node_seconds +=
            (r.end - r.start) * sched::node_count(r.mask);
        outcome.horizon = std::max(outcome.horizon, r.end);
        if (r.end > r.deadline) {
          ++outcome.misses;
          outcome.lateness += r.end - r.deadline;
        }
      });

  Rng rng(41);
  std::uint64_t id = 1;
  for (int i = 0; i < 60; ++i) {
    engine.schedule_at(static_cast<double>(i) * 2.0, [&, i]() {
      sched::Task task;
      task.id = TaskId(id++);
      task.app = catalogue.all()[static_cast<std::size_t>(i) % 7];
      const auto domain = task.app->deadline_domain();
      task.arrival = engine.now();
      task.deadline = engine.now() + (domain.lo + domain.hi) / 2.0;
      scheduler.submit(std::move(task));
    });
  }
  engine.run();
  return outcome;
}

}  // namespace

int main() {
  std::printf("idle-weighting ablation: 60 tasks arriving every 2 s on one "
              "16-node SunUltra1\n\n");
  std::printf("  %-26s %9s %9s %9s %7s\n", "idle term (W_i)", "horizon",
              "util%", "lateness", "misses");
  const struct {
    const char* label;
    double weight;
  } variants[] = {
      {"front-weighted, W_i=0.25", 0.25},
      {"front-weighted, W_i=1.0", 1.0},
      {"front-weighted, W_i=4.0", 4.0},
      {"disabled, W_i=0", 0.0},
  };
  for (const auto& variant : variants) {
    const Outcome outcome = run(variant.weight);
    const double util =
        outcome.busy_node_seconds / (outcome.horizon * 16.0) * 100.0;
    std::printf("  %-26s %9.1f %9.1f %9.1f %7d\n", variant.label,
                outcome.horizon, util, outcome.lateness, outcome.misses);
  }
  std::printf("\nreading: a moderate idle term tightens packing (higher "
              "utilisation for the\nsame stream); an overweighted one "
              "trades deadline compliance for density.\n");
  return 0;
}
