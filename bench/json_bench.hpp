// Shared plumbing for the benches' machine-readable `--json <path>` mode
// (DESIGN.md §11): a tiny argv extractor that runs before
// benchmark::Initialize, a steady_clock ns-per-op timer that calibrates
// its own batch size, peak-RSS via getrusage, and a minimal ordered JSON
// writer.  The emitted files are what tools/ci/check_bench_regression.py
// compares against the committed BENCH_ga_hotpath.json baseline.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <string>
#include <vector>

namespace gridlb::benchjson {

/// Pulls `--json <path>` / `--json=<path>` out of argv (compacting it so
/// the remaining flags can be handed to benchmark::Initialize untouched).
/// Returns the path, or an empty string when the flag is absent.
inline std::string extract_json_path(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

/// Peak resident set size of this process in bytes (ru_maxrss is KiB on
/// Linux).
inline std::uint64_t peak_rss_bytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
}

/// Best-of-`reps` ns-per-op: `fn(iters)` must perform `iters` operations.
/// The batch size is doubled until one batch takes at least
/// `min_batch_seconds`, so short ops are still timed against a clock read
/// that is negligible relative to the batch.
template <typename Fn>
double measure_ns_per_op(Fn&& fn, int reps = 5,
                         double min_batch_seconds = 0.05) {
  using clock = std::chrono::steady_clock;
  const auto time_batch = [&](std::int64_t iters) {
    const auto start = clock::now();
    fn(iters);
    return std::chrono::duration<double>(clock::now() - start).count();
  };
  std::int64_t iters = 1;
  double elapsed = time_batch(iters);
  while (elapsed < min_batch_seconds) {
    iters *= 2;
    elapsed = time_batch(iters);
  }
  double best = elapsed / static_cast<double>(iters);
  for (int r = 1; r < reps; ++r) {
    const double t = time_batch(iters) / static_cast<double>(iters);
    if (t < best) best = t;
  }
  return best * 1e9;
}

/// Minimal ordered JSON emitter — enough for the bench reports (objects,
/// arrays, numbers, strings) without dragging in a JSON library.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void begin_object(const char* key = nullptr) {
    begin_value(key);
    out_ << "{";
    stack_.push_back(false);
  }
  void end_object() { end_container("}"); }

  void begin_array(const char* key = nullptr) {
    begin_value(key);
    out_ << "[";
    stack_.push_back(false);
  }
  void end_array() { end_container("]"); }

  template <typename T>
  void field(const char* key, const T& value) {
    begin_value(key);
    write(value);
  }

 private:
  void begin_value(const char* key) {
    if (!stack_.empty()) {
      if (stack_.back()) out_ << ",";
      stack_.back() = true;
      newline();
    }
    if (key != nullptr) out_ << "\"" << key << "\": ";
  }
  void end_container(const char* close) {
    stack_.pop_back();
    newline();
    out_ << close;
    if (stack_.empty()) out_ << "\n";
  }
  void newline() { out_ << "\n" << std::string(2 * stack_.size(), ' '); }

  void write(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    out_ << buf;
  }
  void write(int v) { out_ << v; }
  void write(std::uint64_t v) { out_ << v; }
  void write(const char* v) { out_ << '"' << v << '"'; }
  void write(const std::string& v) { out_ << '"' << v << '"'; }

  std::ostream& out_;
  std::vector<bool> stack_;  ///< per level: "already wrote a member here"
};

}  // namespace gridlb::benchjson
