// Ablation: discovery scalability (paper §3.1).
//
// "Most requests are processed in a local domain and need not to be
// submitted to a wider area.  Both advertisement and discovery requests
// are processed between neighbouring agents and the system has no central
// structure which might act as a potential bottleneck.  While further
// work is necessary to test the scalability of the system …" — this bench
// is that further work, in simulation: generated fanout-3 grids of 3..192
// agents (scenario subsystem, DESIGN.md §12; case-study hardware mix)
// under a proportional workload (25 requests per resource), reporting
// hops per request, messages per agent, and the share of requests
// resolved without leaving the entry agent.

#include <cstdio>

#include "gridlb.hpp"

int main() {
  using namespace gridlb;
  std::printf("discovery scalability sweep (workload scales with grid "
              "size):\n\n");
  std::printf("  %6s %9s %8s %10s %11s %9s\n", "agents", "requests", "hops",
              "msgs/agent", "local-only%", "beta%");
  for (const int agent_count : {3, 6, 12, 24, 48, 96, 192}) {
    core::ScenarioSpec spec;
    spec.agent_count = agent_count;
    spec.shape = core::HierarchyShape::kFanout;
    spec.fanout = 3;
    spec.requests_per_agent = 25;  // constant load per resource
    const auto result = core::run_experiment(core::scenario_experiment(spec));

    std::uint64_t zero_hop = 0;
    std::uint64_t dispatched = 0;
    for (const auto& stats : result.agent_stats) {
      zero_hop += stats.zero_hop_dispatches;
      dispatched += stats.dispatched_local;
    }
    const double local_share =
        dispatched > 0 ? 100.0 * static_cast<double>(zero_hop) /
                             static_cast<double>(dispatched)
                       : 0.0;
    std::printf("  %6d %9llu %8.2f %10.1f %11.1f %9.1f\n", agent_count,
                static_cast<unsigned long long>(result.requests_submitted),
                result.mean_hops,
                static_cast<double>(result.network_messages) /
                    static_cast<double>(agent_count),
                local_share, result.report.total.balance * 100.0);
  }
  std::printf("\nreading: hops per request grow slowly (hierarchy depth is "
              "logarithmic) and\nper-agent message load stays bounded — no "
              "central bottleneck emerges as the\ngrid grows.\n");
  return 0;
}
