// Ablation: discovery scalability (paper §3.1).
//
// "Most requests are processed in a local domain and need not to be
// submitted to a wider area.  Both advertisement and discovery requests
// are processed between neighbouring agents and the system has no central
// structure which might act as a potential bottleneck.  While further
// work is necessary to test the scalability of the system …" — this bench
// is that further work, in simulation: grids of 3..48 agents (balanced
// ternary hierarchies, case-study hardware mix) under a proportional
// workload, reporting hops per request, messages per agent, and the share
// of requests resolved without leaving the entry agent.

#include <cstdio>
#include <string>
#include <vector>

#include "core/gridlb.hpp"

namespace {

using namespace gridlb;

std::vector<agents::ResourceSpec> balanced_grid(int agent_count) {
  const pace::HardwareType mix[] = {
      pace::HardwareType::kSgiOrigin2000, pace::HardwareType::kSunUltra10,
      pace::HardwareType::kSunUltra5, pace::HardwareType::kSunUltra1,
      pace::HardwareType::kSunSparcStation2};
  std::vector<agents::ResourceSpec> specs;
  for (int i = 0; i < agent_count; ++i) {
    agents::ResourceSpec spec;
    spec.name = "S" + std::to_string(i + 1);
    spec.hardware = mix[static_cast<std::size_t>(i) % 5];
    spec.node_count = 16;
    spec.parent = i == 0 ? -1 : (i - 1) / 3;  // balanced ternary tree
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

int main() {
  std::printf("discovery scalability sweep (workload scales with grid "
              "size):\n\n");
  std::printf("  %6s %9s %8s %10s %11s %9s\n", "agents", "requests", "hops",
              "msgs/agent", "local-only%", "beta%");
  for (const int agent_count : {3, 6, 12, 24, 48}) {
    core::ExperimentConfig config = core::experiment3();
    config.system.resources = balanced_grid(agent_count);
    config.workload.count = agent_count * 25;  // constant load per resource
    const auto result = core::run_experiment(config);

    std::uint64_t zero_hop = 0;
    std::uint64_t dispatched = 0;
    for (const auto& stats : result.agent_stats) {
      zero_hop += stats.zero_hop_dispatches;
      dispatched += stats.dispatched_local;
    }
    const double local_share =
        dispatched > 0 ? 100.0 * static_cast<double>(zero_hop) /
                             static_cast<double>(dispatched)
                       : 0.0;
    std::printf("  %6d %9llu %8.2f %10.1f %11.1f %9.1f\n", agent_count,
                static_cast<unsigned long long>(result.requests_submitted),
                result.mean_hops,
                static_cast<double>(result.network_messages) /
                    static_cast<double>(agent_count),
                local_share, result.report.total.balance * 100.0);
  }
  std::printf("\nreading: hops per request grow slowly (hierarchy depth is "
              "logarithmic) and\nper-agent message load stays bounded — no "
              "central bottleneck emerges as the\ngrid grows.\n");
  return 0;
}
