// Ablation: advertisement scope — own-service (the case study's setup)
// vs transitive relaying of capability-table entries.
//
// With own-service advertisements an agent only ever *matches* its direct
// neighbours; anything further needs escalation hop by hop, and the head
// of the hierarchy can dead-end into best-effort fallback.  Transitive
// relaying (split-horizon) gives every agent a routed view of remote
// resources at the price of larger advertisement exchanges.  This bench
// quantifies the trade on the case-study grid.

#include <cstdio>

#include "core/gridlb.hpp"

namespace {

using namespace gridlb;

void run(const char* label, agents::AdvertisementScope scope,
         double pull_period) {
  core::ExperimentConfig config = core::experiment3();
  config.workload.count = 300;
  config.system.scope = scope;
  config.system.pull_period = pull_period;
  const auto result = core::run_experiment(config);

  std::uint64_t escalations = 0;
  std::uint64_t fallbacks = 0;
  for (const auto& stats : result.agent_stats) {
    escalations += stats.forwarded_up;
    fallbacks += stats.fallback_dispatches;
  }
  std::printf("  %-24s %8.1f %7.1f %7.1f %6.2f %7llu %9llu %9llu\n", label,
              result.report.total.advance_time,
              result.report.total.utilisation * 100.0,
              result.report.total.balance * 100.0, result.mean_hops,
              static_cast<unsigned long long>(escalations),
              static_cast<unsigned long long>(fallbacks),
              static_cast<unsigned long long>(result.network_messages));
}

}  // namespace

int main() {
  std::printf("advertisement scope ablation (experiment 3 workload, 300 "
              "requests):\n\n");
  std::printf("  %-24s %8s %7s %7s %6s %7s %9s %9s\n", "scope", "eps(s)",
              "util%", "beta%", "hops", "escal.", "fallbacks", "messages");
  for (const double period : {10.0, 30.0}) {
    char own[40];
    char transitive[40];
    std::snprintf(own, sizeof own, "own-service, pull %.0fs", period);
    std::snprintf(transitive, sizeof transitive,
                  "transitive, pull %.0fs", period);
    run(own, agents::AdvertisementScope::kOwnService, period);
    run(transitive, agents::AdvertisementScope::kTransitive, period);
  }
  std::printf("\nreading: transitive relaying trades advertisement volume "
              "for discovery\nreach — fewer blind escalations and fewer "
              "head-of-hierarchy fallbacks for\nthe same workload.\n");
  return 0;
}
