// Serial-vs-parallel GA evaluation throughput (google-benchmark).
//
// The GA spends nearly all of its time in the evaluate phase — decode +
// cost for every individual, every generation.  These benches measure that
// phase's decode throughput on the paper's 16-node resource workload at
// 1/2/4/8 evaluate threads, both as a raw parallel sweep over a
// population (BM_PopulationDecode for the legacy self-contained decode,
// BM_PopulationEvaluate for the DESIGN.md §11 hot path: prepared context +
// metrics-only evaluate) and end-to-end through GaScheduler::optimize
// (BM_GaOptimize).  items_per_second is decodes/s; the ratio of the
// 4-thread row to the 1-thread row is the speedup reported in
// BENCH_*.json.  All rows use real (wall-clock) time — thread-CPU time
// under-reports a parallel region.  (On a single-core host all rows
// converge — eval_threads=1 takes the exact serial code path, so the
// comparison there is a measure of pool overhead.)
//
// `--json <path>` additionally writes the machine-readable hot-path report
// (steady_clock, independent of google-benchmark): on the 600-task
// case-study workload, ns/decode for the legacy full decode, the forced
// from-scratch evaluate, the incremental steady-state evaluate and the
// uniform-span delta repair (DESIGN.md §16), GA decode/memo/table-read
// and delta/full counters, cache traffic, peak RSS, and the derived
// speedup_vs_full_decode and delta_speedup_vs_full_evaluate ratios that
// tools/ci/check_bench_regression.py gates on.

#include <benchmark/benchmark.h>

#include <fstream>

#include "common/thread_pool.hpp"
#include "core/gridlb.hpp"
#include "json_bench.hpp"

namespace {

using namespace gridlb;

// The paper's local-scheduler workload: a 16-node SGI Origin2000 and a
// pending queue drawn from the Table 1 application mix.
std::vector<sched::Task> make_tasks(int count) {
  static const pace::ApplicationCatalogue catalogue = pace::paper_catalogue();
  Rng rng(2003);
  std::vector<sched::Task> tasks;
  for (int i = 0; i < count; ++i) {
    sched::Task task;
    task.id = TaskId(static_cast<std::uint64_t>(i));
    task.app = catalogue.all()[static_cast<std::size_t>(
        rng.next_below(catalogue.size()))];
    const auto domain = task.app->deadline_domain();
    task.deadline = rng.uniform(domain.lo, domain.hi);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

// Legacy decode throughput of one population sweep at `threads` workers:
// every decode is self-contained (re-snapshots the prediction table and
// allocates its placements vector).  Kept as the in-run reference the hot
// path is measured against.
void BM_PopulationDecode(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kPopulation = 50;
  constexpr int kTasks = 20;

  pace::EvaluationEngine engine;
  pace::CachedEvaluator cache(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  sched::ScheduleBuilder builder(cache, sgi, 16);
  const auto tasks = make_tasks(kTasks);
  const std::vector<SimTime> idle(16, 0.0);

  Rng rng(7);
  std::vector<sched::SolutionString> population;
  for (int k = 0; k < kPopulation; ++k) {
    population.push_back(sched::SolutionString::random(kTasks, 16, rng));
  }

  ThreadPool pool(threads);
  std::vector<double> costs(population.size());
  const sched::CostWeights weights;
  for (auto _ : state) {
    pool.parallel_for(
        static_cast<int>(population.size()), [&](int begin, int end, int) {
          for (int k = begin; k < end; ++k) {
            const auto decoded = builder.decode(
                tasks, population[static_cast<std::size_t>(k)], idle, 0.0);
            costs[static_cast<std::size_t>(k)] = cost_value(decoded, weights);
          }
        });
    benchmark::DoNotOptimize(costs.data());
  }
  state.SetItemsProcessed(state.iterations() * kPopulation);
}
BENCHMARK(BM_PopulationDecode)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

// The GA's actual steady-state evaluate phase (DESIGN.md §11): one
// prepared DecodeContext shared read-only by all workers, per-slot
// DecodeScratch arenas, metrics-only evaluate — zero allocations and zero
// lock acquisitions per individual.
void BM_PopulationEvaluate(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kPopulation = 50;
  constexpr int kTasks = 20;

  pace::EvaluationEngine engine;
  pace::CachedEvaluator cache(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  sched::ScheduleBuilder builder(cache, sgi, 16);
  const auto tasks = make_tasks(kTasks);
  const std::vector<SimTime> idle(16, 0.0);

  Rng rng(7);
  std::vector<sched::SolutionString> population;
  for (int k = 0; k < kPopulation; ++k) {
    population.push_back(sched::SolutionString::random(kTasks, 16, rng));
  }

  ThreadPool pool(threads);
  sched::DecodeContext context;
  builder.prepare(context, tasks, idle, 0.0, sched::full_mask(16));
  std::vector<sched::DecodeScratch> scratches(
      static_cast<std::size_t>(pool.size() > 0 ? pool.size() : 1));
  std::vector<double> costs(population.size());
  const sched::CostWeights weights;
  for (auto _ : state) {
    pool.parallel_for(
        static_cast<int>(population.size()),
        [&](int begin, int end, int slot) {
          auto& scratch = scratches[static_cast<std::size_t>(slot)];
          for (int k = begin; k < end; ++k) {
            const auto metrics = builder.evaluate(
                context, population[static_cast<std::size_t>(k)], scratch);
            costs[static_cast<std::size_t>(k)] = cost_value(metrics, weights);
          }
        });
    benchmark::DoNotOptimize(costs.data());
  }
  state.SetItemsProcessed(state.iterations() * kPopulation);
}
BENCHMARK(BM_PopulationEvaluate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

// End-to-end optimize() at the paper's settings with eval_threads set;
// selection/crossover/mutation stay serial, so this shows the net effect
// on a whole GA invocation (Amdahl included).
void BM_GaOptimize(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));

  pace::EvaluationEngine engine;
  pace::CachedEvaluator cache(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  sched::ScheduleBuilder builder(cache, sgi, 16);
  const auto tasks = make_tasks(20);
  const std::vector<SimTime> idle(16, 0.0);

  sched::GaConfig config;
  config.generations = 10;
  config.eval_threads = threads;
  sched::GaScheduler scheduler(builder, config, 11);

  std::uint64_t decodes = 0;
  for (auto _ : state) {
    const auto result = scheduler.optimize(tasks, idle, 0.0);
    decodes += result.decodes + result.memo_hits;
    benchmark::DoNotOptimize(result.best_cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(decodes));
}
BENCHMARK(BM_GaOptimize)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// The `--json` report: the ISSUE's acceptance numbers, measured with
// steady_clock on the 600-task case-study workload.
void write_hotpath_report(const std::string& path) {
  constexpr int kTasks = 600;
  constexpr int kNodes = 16;

  pace::EvaluationEngine engine;
  pace::CachedEvaluator cache(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  sched::ScheduleBuilder builder(cache, sgi, kNodes);
  const auto tasks = make_tasks(kTasks);
  const std::vector<SimTime> idle(kNodes, 0.0);
  Rng rng(17);
  const auto solution = sched::SolutionString::random(kTasks, kNodes, rng);

  // Best-of-7 with ≥0.15 s batches: the report feeds a CI regression gate,
  // so favour repeatability over wall time (~4 s total).
  constexpr int kReps = 7;
  constexpr double kBatchSeconds = 0.15;

  // Legacy self-contained full decode — the pre-PR evaluation path.
  const double full_decode_ns = benchjson::measure_ns_per_op(
      [&](std::int64_t iters) {
        for (std::int64_t i = 0; i < iters; ++i) {
          benchmark::DoNotOptimize(builder.decode(tasks, solution, idle, 0.0));
        }
      },
      kReps, kBatchSeconds);

  // From-scratch rebuild under a prepared context: evaluate_from with span
  // 0 forces the full decode loop every iteration — the per-genome cost
  // before incremental evaluation existed (DESIGN.md §16).
  sched::DecodeContext context;
  sched::DecodeScratch scratch;
  builder.prepare(context, tasks, idle, 0.0, sched::full_mask(kNodes));
  (void)builder.evaluate(context, solution, scratch);  // size the scratch
  const double full_evaluate_ns = benchjson::measure_ns_per_op(
      [&](std::int64_t iters) {
        for (std::int64_t i = 0; i < iters; ++i) {
          benchmark::DoNotOptimize(
              builder.evaluate_from(context, solution, scratch, 0));
        }
      },
      kReps, kBatchSeconds);

  // Hot path: context prepared once, metrics-only evaluate per individual.
  // evaluate() is incremental — it diffs the genome against the scratch's
  // recorded stream, so the steady state here (same genome every
  // iteration) is the unchanged-genome fast path: one stream scan and the
  // cached metrics.
  const double evaluate_ns = benchjson::measure_ns_per_op(
      [&](std::int64_t iters) {
        for (std::int64_t i = 0; i < iters; ++i) {
          benchmark::DoNotOptimize(
              builder.evaluate(context, solution, scratch));
        }
      },
      kReps, kBatchSeconds);

  // Delta repair cost at uniformly distributed change positions: span p
  // cycles over the whole schedule, so each iteration restores the
  // checkpoint at or before p and replays the suffix — the same work a
  // one-position genome change at p costs the GA (the front-weighted idle
  // pass always re-runs in full; §16 explains why it cannot be split).
  scratch.delta_evals = 0;
  scratch.full_evals = 0;
  std::uint64_t delta_pos = 0;
  const double delta_evaluate_ns = benchjson::measure_ns_per_op(
      [&](std::int64_t iters) {
        for (std::int64_t i = 0; i < iters; ++i) {
          const int span = static_cast<int>(delta_pos % kTasks);
          ++delta_pos;
          benchmark::DoNotOptimize(
              builder.evaluate_from(context, solution, scratch, span));
        }
      },
      kReps, kBatchSeconds);
  const std::uint64_t sweep_delta_evals = scratch.delta_evals;
  const std::uint64_t sweep_full_evals = scratch.full_evals;

  // Winner decode under the prepared context (runs once per GA call).
  const double context_decode_ns = benchjson::measure_ns_per_op(
      [&](std::int64_t iters) {
        for (std::int64_t i = 0; i < iters; ++i) {
          benchmark::DoNotOptimize(builder.decode(context, solution, scratch));
        }
      },
      kReps, kBatchSeconds);

  // One GA run at the paper's settings for the memo/table counters.
  const auto ga_tasks = make_tasks(20);
  sched::GaConfig config;
  config.population_size = 50;
  config.generations = 50;
  sched::GaScheduler scheduler(builder, config, 11);
  const auto ga = scheduler.optimize(ga_tasks, idle, 0.0);
  const std::uint64_t ga_evaluations = ga.decodes + ga.memo_hits;

  const auto& stats = cache.stats();

  std::ofstream out(path);
  benchjson::JsonWriter json(out);
  json.begin_object();
  json.field("bench", "micro_parallel_ga");
  json.field("schema_version", 2);
  json.begin_object("workload");
  json.field("tasks", kTasks);
  json.field("nodes", kNodes);
  json.field("resource", "SgiOrigin2000");
  json.end_object();
  json.begin_object("full_decode");
  json.field("ns_per_decode", full_decode_ns);
  json.field("decodes_per_second", 1e9 / full_decode_ns);
  json.end_object();
  json.begin_object("full_evaluate");
  json.field("ns_per_evaluate", full_evaluate_ns);
  json.field("evaluates_per_second", 1e9 / full_evaluate_ns);
  json.end_object();
  json.begin_object("hot_path_evaluate");
  json.field("path", "incremental: unchanged-genome steady state");
  json.field("ns_per_evaluate", evaluate_ns);
  json.field("evaluates_per_second", 1e9 / evaluate_ns);
  json.end_object();
  json.begin_object("delta_evaluate");
  json.field("path", "evaluate_from, spans uniform over the schedule");
  json.field("ns_per_evaluate", delta_evaluate_ns);
  json.field("evaluates_per_second", 1e9 / delta_evaluate_ns);
  json.field("delta_evals", sweep_delta_evals);
  json.field("full_evals", sweep_full_evals);
  json.end_object();
  json.begin_object("context_decode");
  json.field("ns_per_decode", context_decode_ns);
  json.end_object();
  json.field("speedup_vs_full_decode", full_decode_ns / evaluate_ns);
  json.field("delta_speedup_vs_full_evaluate",
             full_evaluate_ns / delta_evaluate_ns);
  json.begin_object("ga");
  json.field("population", config.population_size);
  json.field("generations", config.generations);
  json.field("evaluations", ga_evaluations);
  json.field("decodes", ga.decodes);
  json.field("memo_hits", ga.memo_hits);
  json.field("memo_hit_rate", static_cast<double>(ga.memo_hits) /
                                  static_cast<double>(ga_evaluations));
  json.field("table_reads", ga.table_reads);
  json.field("delta_evals", ga.delta_evals);
  json.field("full_evals", ga.full_evals);
  json.field("eval_threads", ga.eval_threads);
  json.end_object();
  json.begin_object("cache");
  json.field("hits", static_cast<std::uint64_t>(stats.hits));
  json.field("misses", static_cast<std::uint64_t>(stats.misses));
  json.field("engine_evaluations", engine.evaluations());
  json.end_object();
  json.field("peak_rss_bytes", benchjson::peak_rss_bytes());
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      gridlb::benchjson::extract_json_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!json_path.empty()) write_hotpath_report(json_path);
  return 0;
}
