// Serial-vs-parallel GA evaluation throughput (google-benchmark).
//
// The GA spends nearly all of its time in the evaluate phase — decode +
// cost for every individual, every generation.  These benches measure that
// phase's decode throughput on the paper's 16-node resource workload at
// 1/2/4/8 evaluate threads, both as a raw parallel decode sweep over a
// population (BM_PopulationDecode) and end-to-end through
// GaScheduler::optimize (BM_GaOptimize).  items_per_second is decodes/s;
// the ratio of the 4-thread row to the 1-thread row is the speedup
// reported in BENCH_*.json.  Both benches use real (wall-clock) time —
// thread-CPU time under-reports a parallel region.  (On a single-core
// host all rows converge — eval_threads=1 takes the exact serial code
// path, so the comparison there is a measure of pool overhead.)

#include <benchmark/benchmark.h>

#include "common/thread_pool.hpp"
#include "core/gridlb.hpp"

namespace {

using namespace gridlb;

// The paper's local-scheduler workload: a 16-node SGI Origin2000 and a
// pending queue drawn from the Table 1 application mix.
std::vector<sched::Task> make_tasks(int count) {
  static const pace::ApplicationCatalogue catalogue = pace::paper_catalogue();
  Rng rng(2003);
  std::vector<sched::Task> tasks;
  for (int i = 0; i < count; ++i) {
    sched::Task task;
    task.id = TaskId(static_cast<std::uint64_t>(i));
    task.app = catalogue.all()[static_cast<std::size_t>(
        rng.next_below(catalogue.size()))];
    const auto domain = task.app->deadline_domain();
    task.deadline = rng.uniform(domain.lo, domain.hi);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

// Decode throughput of one population sweep at `threads` workers — the
// GA's evaluate phase in isolation, with the shared (sharded) cache warm
// after the first iteration, exactly as in steady-state GA generations.
void BM_PopulationDecode(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kPopulation = 50;
  constexpr int kTasks = 20;

  pace::EvaluationEngine engine;
  pace::CachedEvaluator cache(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  sched::ScheduleBuilder builder(cache, sgi, 16);
  const auto tasks = make_tasks(kTasks);
  const std::vector<SimTime> idle(16, 0.0);

  Rng rng(7);
  std::vector<sched::SolutionString> population;
  for (int k = 0; k < kPopulation; ++k) {
    population.push_back(sched::SolutionString::random(kTasks, 16, rng));
  }

  ThreadPool pool(threads);
  std::vector<double> costs(population.size());
  const sched::CostWeights weights;
  for (auto _ : state) {
    pool.parallel_for(
        static_cast<int>(population.size()), [&](int begin, int end, int) {
          for (int k = begin; k < end; ++k) {
            const auto decoded = builder.decode(
                tasks, population[static_cast<std::size_t>(k)], idle, 0.0);
            costs[static_cast<std::size_t>(k)] = cost_value(decoded, weights);
          }
        });
    benchmark::DoNotOptimize(costs.data());
  }
  state.SetItemsProcessed(state.iterations() * kPopulation);
}
BENCHMARK(BM_PopulationDecode)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

// End-to-end optimize() at the paper's settings with eval_threads set;
// selection/crossover/mutation stay serial, so this shows the net effect
// on a whole GA invocation (Amdahl included).
void BM_GaOptimize(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));

  pace::EvaluationEngine engine;
  pace::CachedEvaluator cache(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  sched::ScheduleBuilder builder(cache, sgi, 16);
  const auto tasks = make_tasks(20);
  const std::vector<SimTime> idle(16, 0.0);

  sched::GaConfig config;
  config.generations = 10;
  config.eval_threads = threads;
  sched::GaScheduler scheduler(builder, config, 11);

  std::uint64_t decodes = 0;
  for (auto _ : state) {
    const auto result = scheduler.optimize(tasks, idle, 0.0);
    decodes += result.decodes;
    benchmark::DoNotOptimize(result.best_cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(decodes));
}
BENCHMARK(BM_GaOptimize)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
