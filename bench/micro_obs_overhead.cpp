// micro_obs_overhead — observability overhead gate (DESIGN.md §14).  The
// google-benchmark rows measure the per-site cost of an instrumentation
// call with observability off (one relaxed load + branch) and fully on.
// `--json <path>` writes the machine-readable overhead report compared by
// CI against the committed BENCH_obs_overhead.json: a 64-agent campaign
// run once bare and once with tracing, metrics, and the continuous
// sampler all enabled (no output files — the cost under test is the
// recording, not the final serialization).  CI gates on the
// plain_vs_observed ratio with an absolute floor: observed must stay
// within a few percent of plain.  Both runs must also produce identical
// results — the overhead number is meaningless if observation perturbed
// the simulation.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>

#include "common/assert.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "json_bench.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace {

using namespace gridlb;

void BM_EmitDisabled(benchmark::State& state) {
  // No session installed: the disabled fast path.
  std::uint64_t task = 0;
  for (auto _ : state) {
    obs::emit({.at = 1.0,
               .kind = obs::EventKind::kTaskCompleted,
               .task = ++task,
               .resource = 1});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmitDisabled);

void BM_EmitEnabled(benchmark::State& state) {
  obs::ObsConfig config;
  config.trace = true;
  obs::Session session(config);
  std::uint64_t task = 0;
  for (auto _ : state) {
    obs::emit({.at = 1.0,
               .kind = obs::EventKind::kTaskCompleted,
               .task = ++task,
               .resource = 1});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmitEnabled);

// --- the --json overhead report ------------------------------------------

core::ExperimentConfig campaign_config(bool observed) {
  core::ScenarioSpec spec;
  spec.agent_count = 64;
  spec.fanout = 3;
  spec.requests_per_agent = 25;
  spec.arrival_interval = 0.0;  // auto: the paper's per-agent rate
  core::ExperimentConfig config = core::scenario_experiment(spec);
  config.system.sim_shards = 1;  // measure recording cost, not scaling
  if (observed) {
    config.obs.trace = true;
    config.obs.metrics = true;
    config.obs.metrics_interval = 30.0;
  }
  return config;
}

double campaign_seconds(bool observed, core::ExperimentResult* out) {
  using clock = std::chrono::steady_clock;
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = clock::now();
    core::ExperimentResult result =
        core::run_experiment(campaign_config(observed));
    const double elapsed =
        std::chrono::duration<double>(clock::now() - start).count();
    if (rep == 0 || elapsed < best) best = elapsed;
    if (out != nullptr) *out = std::move(result);
  }
  return best;
}

void write_overhead_report(const std::string& path) {
  const double emit_off_ns =
      benchjson::measure_ns_per_op([](std::int64_t iters) {
        std::uint64_t task = 0;
        for (std::int64_t i = 0; i < iters; ++i) {
          obs::emit({.at = 1.0,
                     .kind = obs::EventKind::kTaskCompleted,
                     .task = ++task,
                     .resource = 1});
        }
      });
  const double emit_on_ns =
      benchjson::measure_ns_per_op([](std::int64_t iters) {
        obs::ObsConfig config;
        config.trace = true;
        obs::Session session(config);
        std::uint64_t task = 0;
        for (std::int64_t i = 0; i < iters; ++i) {
          obs::emit({.at = 1.0,
                     .kind = obs::EventKind::kTaskCompleted,
                     .task = ++task,
                     .resource = 1});
        }
      });

  core::ExperimentResult plain;
  core::ExperimentResult observed;
  const double plain_seconds = campaign_seconds(false, &plain);
  const double observed_seconds = campaign_seconds(true, &observed);

  // The overhead ratio only describes observation if the observed run
  // computed the identical simulation (DESIGN.md §14's neutrality
  // contract; also pinned by tests/obs/determinism_test.cpp).
  const bool identical = plain.finished_at == observed.finished_at &&
                         plain.tasks_completed == observed.tasks_completed &&
                         plain.network_messages == observed.network_messages &&
                         plain.sim_events == observed.sim_events &&
                         plain.mean_hops == observed.mean_hops;
  GRIDLB_REQUIRE(identical,
                 "observed campaign diverged from the unobserved reference");

  std::ofstream out(path);
  benchjson::JsonWriter json(out);
  json.begin_object();
  json.field("bench", "micro_obs_overhead");
  json.field("schema_version", 1);
  json.begin_object("workload");
  json.field("agents", 64);
  json.field("fanout", 3);
  json.field("requests_per_agent", 25);
  json.field("tasks", static_cast<std::uint64_t>(plain.tasks_completed));
  json.end_object();
  json.begin_object("emit");
  json.field("disabled_ns_per_event", emit_off_ns);
  json.field("enabled_ns_per_event", emit_on_ns);
  json.end_object();
  json.begin_object("campaign");
  json.field("plain_seconds", plain_seconds);
  json.field("observed_seconds", observed_seconds);
  json.field("trace_events",
             static_cast<std::uint64_t>(observed.trace_events));
  json.field("sim_events", static_cast<std::uint64_t>(plain.sim_events));
  json.end_object();
  // > 1 means observation was free within noise; CI gates this with an
  // absolute floor (plain_vs_observed@0.95 ⇔ < 5% overhead).
  json.field("plain_vs_observed", plain_seconds / observed_seconds);
  json.field("results_identical", identical ? 1 : 0);
  json.field("peak_rss_bytes", benchjson::peak_rss_bytes());
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      gridlb::benchjson::extract_json_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!json_path.empty()) write_overhead_report(json_path);
  return 0;
}
