// Shared helper for the figure benches: runs the three Table 2
// experiments once and returns the results (Figs. 8, 9 and 10 are three
// projections of the same runs).
#pragma once

#include <cstdio>
#include <vector>

#include "common/log.hpp"
#include "core/gridlb.hpp"

namespace gridlb::bench {

inline std::vector<core::ExperimentResult> run_experiment_suite() {
  std::vector<core::ExperimentResult> results;
  for (const core::ExperimentConfig& config :
       {core::experiment1(), core::experiment2(), core::experiment3()}) {
    log::info("running ", config.name, "…");
    results.push_back(core::run_experiment(config));
  }
  return results;
}

/// Prints one Fig. 8/9/10-style series block: a column per experiment and
/// a row per agent plus the grid total, using `select` to project a metric
/// out of a MetricsRow.
template <class Select>
void print_series(const std::vector<core::ExperimentResult>& results,
                  const char* metric_label, Select select) {
  std::printf("%-7s", "agent");
  for (std::size_t e = 1; e <= results.size(); ++e) {
    std::printf("  exp%zu(%s)", e, metric_label);
  }
  std::printf("\n");
  const std::size_t rows = results.front().report.resources.size();
  for (std::size_t row = 0; row < rows; ++row) {
    std::printf("%-7s", results.front().report.resources[row].label.c_str());
    for (const auto& result : results) {
      std::printf("  %11.1f", select(result.report.resources[row]));
    }
    std::printf("\n");
  }
  std::printf("%-7s", "Total");
  for (const auto& result : results) {
    std::printf("  %11.1f", select(result.report.total));
  }
  std::printf("\n");
}

}  // namespace gridlb::bench
