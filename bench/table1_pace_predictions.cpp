// Reproduces Table 1: PACE-predicted execution times for the seven case-
// study applications on 1..16 SGIOrigin2000 processors, plus the deadline
// domains.  The evaluation engine is driven exactly as the schedulers
// drive it (application model × resource model), so this is an end-to-end
// check of the prediction path, not a dump of constants.

#include <algorithm>
#include <cstdio>

#include "core/gridlb.hpp"

int main() {
  using namespace gridlb;
  pace::EvaluationEngine engine;
  const auto catalogue = pace::paper_catalogue();
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);

  std::printf("Table 1 — predicted runtimes (s) on SGIOrigin2000, "
              "1..16 processors\n\n");
  std::printf("%-10s %-10s", "app", "deadline");
  for (int k = 1; k <= 16; ++k) std::printf(" %4d", k);
  std::printf("\n");

  for (const auto& model : catalogue.all()) {
    const auto domain = model->deadline_domain();
    char bounds[32];
    std::snprintf(bounds, sizeof bounds, "[%.0f,%.0f]", domain.lo, domain.hi);
    std::printf("%-10s %-10s", model->name().c_str(), bounds);
    for (int k = 1; k <= 16; ++k) {
      std::printf(" %4.0f", engine.evaluate(*model, sgi, k));
    }
    std::printf("\n");
  }

  std::printf("\nper-platform scaling of sweep3d (minimum over k):\n");
  for (const auto type : pace::all_hardware_types()) {
    const auto resource = pace::ResourceModel::of(type);
    double best = 1e300;
    for (int k = 1; k <= 16; ++k) {
      best = std::min(best,
                      engine.evaluate(*catalogue.find("sweep3d"), resource, k));
    }
    std::printf("  %-18s factor %.1f  min runtime %5.1f s\n",
                std::string(pace::hardware_name(type)).c_str(),
                resource.factor, best);
  }
  std::printf("\n%llu evaluation-engine calls\n",
              static_cast<unsigned long long>(engine.evaluations()));
  return 0;
}
