// Ablation: threshold-triggered queue migration under sustained load.
//
// The paper balances load purely at submission time: once a request has
// been dispatched to a resource it stays there, however uneven the
// queues later become.  DESIGN.md §17 adds a second chance — an agent
// whose own backlog exceeds an overload watermark re-homes *queued*
// (never running) tasks to a direct neighbour advertising an idle queue.
// This bench drives an open-loop bursty (ON/OFF) campaign at 1×–10× the
// paper's per-agent arrival rate and reports the grid balance β, the
// tail sojourn time and the shed rate with migration off and on.  At low
// rates queues never build and migration is a no-op; past saturation it
// should strictly improve β by draining hot queues into cold ones.
//
// Single-point mode for CI smoke tests:
//   ablation_migration --rate 4 [--agents N --duration T]
// runs one off/on pair and exits non-zero unless migration strictly
// improves β (and actually migrated something).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "gridlb.hpp"

namespace {

using namespace gridlb;

struct Point {
  double beta = 0.0;       ///< grid-total balance (eq. 15)
  double latency_p99 = 0.0;
  double advance_p1 = 0.0; ///< 1st-percentile deadline advance (tail)
  double shed = 0.0;
  std::uint64_t migrations = 0;
  std::uint64_t completed = 0;
};

/// Open-loop bursty campaign at `rate` × the Fig. 7 per-agent rate.
core::ExperimentConfig rate_config(double rate, int agents, double duration,
                                   bool migrate) {
  core::ScenarioSpec spec;
  spec.agent_count = agents;
  // The paper submits one request per second into the Fig. 7 grid;
  // `rate` multiplies that absolute offered rate.  The default 48-agent
  // grid absorbs roughly 4× of it, so the sweep crosses saturation in
  // the middle instead of starting there.
  spec.arrival_interval = 1.0 / rate;
  core::ExperimentConfig config = core::scenario_experiment(spec);
  config.workload.arrival = core::ArrivalProcess::kOnOff;
  // Enough entries to outlast the window; the open-loop cutoff discards
  // the unsubmitted tail.
  config.workload.count =
      static_cast<int>(duration / spec.arrival_interval) + 64;
  config.duration = duration;
  config.system.migration.enabled = migrate;
  config.name = migrate ? "migration on" : "migration off";
  return config;
}

Point run_point(double rate, int agents, double duration, bool migrate) {
  const core::ExperimentResult result =
      core::run_experiment(rate_config(rate, agents, duration, migrate));
  Point point;
  point.beta = result.report.total.balance;
  point.latency_p99 = result.latency_p99;
  std::vector<double> advances;
  advances.reserve(result.completions.size());
  for (const auto& record : result.completions) {
    advances.push_back(record.deadline - record.end);
  }
  point.advance_p1 = metrics::percentile(std::move(advances), 1.0);
  point.shed = result.shed_rate;
  point.migrations = result.migrations;
  point.completed = result.tasks_completed;
  return point;
}

void print_pair(double rate, const Point& off, const Point& on) {
  std::printf("  %4.0fx  %7.1f %7.1f   %8.1f %8.1f   %8.1f %8.1f   "
              "%5.1f%% %5.1f%%  %6llu\n",
              rate, off.beta * 100.0, on.beta * 100.0, off.latency_p99,
              on.latency_p99, off.advance_p1, on.advance_p1, off.shed * 100.0,
              on.shed * 100.0, static_cast<unsigned long long>(on.migrations));
}

int single_point(double rate, int agents, double duration) {
  const Point off = run_point(rate, agents, duration, false);
  const Point on = run_point(rate, agents, duration, true);
  std::printf("rate=%.0fx agents=%d window=%.0fs: beta %.1f%% -> %.1f%%, "
              "p99 latency %.1fs -> %.1fs, shed %.2f%% -> %.2f%%, "
              "%llu migrations\n",
              rate, agents, duration, off.beta * 100.0, on.beta * 100.0,
              off.latency_p99, on.latency_p99, off.shed * 100.0,
              on.shed * 100.0,
              static_cast<unsigned long long>(on.migrations));
  if (on.migrations == 0) {
    std::fprintf(stderr, "FAIL: migration never triggered\n");
    return 1;
  }
  if (on.beta <= off.beta) {
    std::fprintf(stderr, "FAIL: migration did not improve balance "
                         "(beta %.3f -> %.3f)\n",
                 off.beta, on.beta);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double rate = -1.0;
  int agents = 48;
  double duration = 240.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      rate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--agents") == 0 && i + 1 < argc) {
      agents = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration = std::atof(argv[++i]);
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--rate X --agents N --duration T]  (no flags: sweep)\n",
          argv[0]);
      return 2;
    }
  }
  if (rate > 0.0) return single_point(rate, agents, duration);

  std::printf("queue-migration sweep (%d-agent grid, ON/OFF bursty "
              "arrivals, %.0fs open-loop window):\n\n",
              agents, duration);
  std::printf("  %5s  %15s   %17s   %17s   %12s  %6s\n", "rate",
              "beta% off/on", "p99 lat(s) off/on", "adv p1(s) off/on",
              "shed off/on", "moved");
  for (const double r : {1.0, 2.0, 4.0, 7.0, 10.0}) {
    const Point off = run_point(r, agents, duration, false);
    const Point on = run_point(r, agents, duration, true);
    print_pair(r, off, on);
  }
  std::printf("\nreading: light load trips the watermarks only on the odd "
              "burst; around the\nsaturation knee re-homing queued work "
              "flattens the hot spots a burst leaves\nbehind — beta "
              "recovers and the latency tail shortens without ever "
              "touching a\nrunning task.  Deep overload tapers off again: "
              "no neighbour stays idle long\nenough to qualify as a "
              "target.\n");
  return 0;
}
