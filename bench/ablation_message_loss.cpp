// Ablation: message loss vs. the loss-tolerant agent protocol.
//
// The paper's agents exchange requests, advertisements and results over a
// network it assumes to be reliable.  DESIGN.md §10 adds a deterministic
// fault plan (drops, jitter, agent crashes) and a retry/timeout/backoff
// protocol on top; this bench sweeps the drop probability and reports the
// Table 3 metrics next to the fault-handling counters — what unreliability
// costs, and what the tolerance machinery spends to hide it.
//
// Single-point mode for CI smoke tests:
//   ablation_message_loss --drop 0.05 --requests 600
// runs one case and exits non-zero unless every submitted task completed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "gridlb.hpp"

namespace {

using namespace gridlb;

core::ExperimentConfig lossy_config(double drop_prob, int requests) {
  core::ExperimentConfig config = core::experiment3();
  config.workload.count = requests;
  config.system.fault.drop_prob = drop_prob;
  if (drop_prob > 0.0) config.system.fault_tolerance.enabled = true;
  return config;
}

void print_row(const char* label, const core::ExperimentResult& result) {
  const auto& total = result.report.total;
  std::printf("  %-14s %9.1f %8.1f %8.1f %7llu %8llu %8llu %8llu %7llu\n",
              label, total.advance_time, total.utilisation * 100.0,
              total.balance * 100.0,
              static_cast<unsigned long long>(result.tasks_completed),
              static_cast<unsigned long long>(result.messages_dropped),
              static_cast<unsigned long long>(result.message_retries),
              static_cast<unsigned long long>(result.duplicates_suppressed),
              static_cast<unsigned long long>(result.tasks_resubmitted));
}

int single_point(double drop_prob, int requests) {
  core::ExperimentConfig config = lossy_config(drop_prob, requests);
  config.system.agent_churn.enabled = true;
  const core::ExperimentResult result = core::run_experiment(config);
  std::printf("drop=%.0f%% churn=on: %llu/%llu tasks completed, "
              "%llu dropped msgs, %llu retries, %llu crashes, "
              "%llu resubmitted\n",
              drop_prob * 100.0,
              static_cast<unsigned long long>(result.tasks_completed),
              static_cast<unsigned long long>(result.requests_submitted),
              static_cast<unsigned long long>(result.messages_dropped),
              static_cast<unsigned long long>(result.message_retries),
              static_cast<unsigned long long>(result.agent_crashes),
              static_cast<unsigned long long>(result.tasks_resubmitted));
  if (result.tasks_completed < result.requests_submitted) {
    std::fprintf(stderr, "FAIL: tasks lost under message loss\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double drop = -1.0;
  int requests = 600;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--drop") == 0 && i + 1 < argc) {
      drop = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--drop P --requests N]  (no flags: sweep)\n",
                   argv[0]);
      return 2;
    }
  }
  if (drop >= 0.0) return single_point(drop, requests);

  std::printf("message-loss sweep (experiment 3, 300 requests, "
              "retry/timeout/backoff on when lossy):\n\n");
  std::printf("  %-14s %9s %8s %8s %7s %8s %8s %8s %7s\n", "drop rate",
              "eps(s)", "util%", "beta%", "done", "dropped", "retries",
              "dupes", "resub");
  for (const double rate : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    char label[32];
    std::snprintf(label, sizeof label, "%.0f%%%s", rate * 100.0,
                  rate == 0.0 ? " (lossless)" : "");
    print_row(label, core::run_experiment(lossy_config(rate, 300)));
  }
  std::printf("\nreading: the retry/ack layer turns at-least-once delivery "
              "into effectively-once\nexecution — every task still "
              "completes; rising drop rates cost retransmission\ntraffic "
              "and backoff latency (eps creeps up), not tasks.\n");
  return 0;
}
