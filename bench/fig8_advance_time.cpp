// Reproduces Fig. 8: trends of the average advance time of application
// execution completion ε across experiments 1-3, per agent and for the
// whole grid.  Expected shape (paper §4.2): ε improves monotonically from
// experiment 1 to 3; heavily-loaded platforms (S11, S12) improve the most,
// lightly-loaded ones (S1, S2) barely move, and the agent-based mechanism
// contributes more than the local schedulers.

#include <cstdio>

#include "experiment_suite.hpp"

int main() {
  using namespace gridlb;
  const auto results = bench::run_experiment_suite();

  std::printf("Fig. 8 — average advance time eps (s) by experiment\n\n");
  bench::print_series(results, "eps/s", [](const metrics::MetricsRow& row) {
    return row.advance_time;
  });

  const auto& r = results;
  std::printf("\nshape checks:\n");
  const auto check = [](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  check(r[0].report.total.advance_time < r[1].report.total.advance_time,
        "GA improves grid-average eps over FIFO (exp1 -> exp2)");
  check(r[1].report.total.advance_time < r[2].report.total.advance_time,
        "agents improve grid-average eps further (exp2 -> exp3)");
  // The most overloaded platforms improve the most between exp 1 and 3.
  const auto improvement = [&r](std::size_t agent) {
    return r[2].report.resources[agent].advance_time -
           r[0].report.resources[agent].advance_time;
  };
  check(improvement(10) > improvement(0) && improvement(11) > improvement(1),
        "S11/S12 (overloaded) improve more than S1/S2 (lightly loaded)");
  return 0;
}
