// Ablation: service-advertisement strategy (paper §3.1).
//
// "An agent can advertise service information to both upper and lower
// agents.  Different strategies can be used to control these processes,
// which has an impact on the system efficiency.  Service information can
// be pushed to or pulled from other agents, a process that is triggered by
// system events or through periodic updates."
//
// The case study pulls every 10 s.  This bench sweeps the pull period and
// compares against event-triggered push, reporting grid metrics and
// message cost — the staleness/traffic trade-off the paper alludes to.

#include <cstdio>

#include "core/gridlb.hpp"

namespace {

using namespace gridlb;

core::ExperimentResult run_with(double pull_period, bool push_on_dispatch) {
  core::ExperimentConfig config = core::experiment3();
  config.workload.count = 300;
  config.system.pull_period = pull_period;
  config.system.push_on_dispatch = push_on_dispatch;
  return core::run_experiment(config);
}

void print_row(const char* label, const core::ExperimentResult& result) {
  std::printf("  %-18s %8.1f %8.1f %8.1f %6.2f %9llu\n", label,
              result.report.total.advance_time,
              result.report.total.utilisation * 100.0,
              result.report.total.balance * 100.0, result.mean_hops,
              static_cast<unsigned long long>(result.network_messages));
}

}  // namespace

int main() {
  std::printf("advertisement strategy sweep (experiment 3 workload, 300 "
              "requests):\n\n");
  std::printf("  %-18s %8s %8s %8s %6s %9s\n", "strategy", "eps(s)", "util%",
              "beta%", "hops", "messages");

  for (const double period : {2.0, 5.0, 10.0, 30.0, 60.0, 120.0}) {
    char label[32];
    std::snprintf(label, sizeof label, "pull every %.0fs", period);
    print_row(label, run_with(period, false));
  }
  print_row("push on dispatch", run_with(0.0, true));
  print_row("pull 10s + push", run_with(10.0, true));
  print_row("no advertisement", run_with(0.0, false));

  std::printf("\nreading: short pull periods keep capability tables fresh "
              "(better balance)\nat the price of message traffic; "
              "event-triggered push reaches similar\nfreshness with load-"
              "dependent cost.  With no advertisement at all every\nrequest "
              "must escalate blindly to the hierarchy head.\n");
  return 0;
}
