// Ablation: stateless hashed placement vs the agent hierarchy
// (DESIGN.md §15).
//
// The hierarchy buys balanced placement with advertisement and discovery
// traffic: pulls every period, service documents back, and O(depth)
// forwards per request, all computed from stale snapshots.  The CRUSH-
// style straw map spends none of that — placement is a hash — but routes
// on static hardware weights plus the portal's own optimistic backlog
// bookkeeping.  This bench quantifies the trade on generated fanout-3
// grids from 3 agents up to 10k: the Table 3 metrics (ε / υ / β) and the
// message economics side by side per family, then the straw map's
// bounded-remap contract under resource churn.
//
// Flags:
//   --max-agents N   largest sweep point (default 1536; pass 10000 for
//                    the full sweep — the biggest grids take minutes)
//   --csv            emit the sweep as CSV (for the CI artifact)
//   --requests-per-agent N   workload scale (default 10)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/scenario.hpp"
#include "gridlb.hpp"
#include "sched/hash_placement.hpp"

namespace {

using namespace gridlb;

struct FamilyRow {
  core::ExperimentResult result;
  double discovery_msgs = 0.0;  ///< pulls + advertisements + forwards
};

FamilyRow run_family(const core::ScenarioSpec& spec,
                     core::PlacementFamily family) {
  core::ExperimentConfig config = core::scenario_experiment(spec);
  config.placement = family;
  config.system.sim_shards = 0;  // pure perf knob; results are invariant
  FamilyRow row{core::run_experiment(config), 0.0};
  for (const auto& stats : row.result.agent_stats) {
    row.discovery_msgs += static_cast<double>(
        stats.pulls_sent + stats.advertisements_received +
        stats.forwarded_match + stats.forwarded_up);
  }
  return row;
}

void print_row(int agents, const char* family, const FamilyRow& row,
               bool csv) {
  const auto& total = row.result.report.total;
  const double requests =
      static_cast<double>(row.result.requests_submitted);
  const double msgs_per_req =
      static_cast<double>(row.result.network_messages) / requests;
  const double discovery_per_req = row.discovery_msgs / requests;
  if (csv) {
    std::printf("%d,%s,%llu,%.3f,%.4f,%.4f,%.2f,%.2f,%.3f\n", agents, family,
                static_cast<unsigned long long>(row.result.requests_submitted),
                total.advance_time, total.utilisation, total.balance,
                msgs_per_req, discovery_per_req, row.result.mean_hops);
  } else {
    std::printf("  %6d %-7s %8llu %8.1f %6.1f %6.1f %9.2f %9.2f %6.2f\n",
                agents, family,
                static_cast<unsigned long long>(row.result.requests_submitted),
                total.advance_time, total.utilisation * 100.0,
                total.balance * 100.0, msgs_per_req, discovery_per_req,
                row.result.mean_hops);
  }
}

/// Bounded remap under churn: build the straw map over the generated
/// resource tree, knock one resource out, and compare the fraction of
/// keys that moved against the victim's weight share — straw2 promises
/// they match (± binomial noise) and that no key moves between survivors.
void remap_section(int agents) {
  core::ScenarioSpec spec;
  spec.agent_count = agents;
  const std::vector<agents::ResourceSpec> resources =
      core::scenario_resources(spec);
  std::vector<sched::PlacementTarget> targets;
  for (std::size_t i = 0; i < resources.size(); ++i) {
    targets.push_back(sched::PlacementTarget{
        AgentId(i + 1),
        sched::HashPlacement::hardware_weight(
            pace::ResourceModel::of(resources[i].hardware),
            resources[i].node_count)});
  }
  sched::HashPlacement placement(sched::HashPlacement::Config{}, targets);
  const std::uint64_t keys = 100000;
  std::vector<std::size_t> before(keys);
  for (std::uint64_t key = 0; key < keys; ++key) {
    before[key] = placement.place(key).index;
  }

  std::printf("\nbounded remap under churn (%d-agent grid, %llu keys):\n\n",
              agents, static_cast<unsigned long long>(keys));
  std::printf("  %-10s %-16s %8s %8s %10s\n", "victim", "hardware",
              "w-share%", "moved%", "cross-moves");
  // Knock out the first resource of each hardware class: the heaviest and
  // lightest weights in the mix bracket the contract.
  std::vector<std::size_t> victims;
  for (std::size_t i = 0; i < resources.size() && victims.size() < 5; ++i) {
    bool seen = false;
    for (const std::size_t v : victims) {
      seen = seen || resources[v].hardware == resources[i].hardware;
    }
    if (!seen) victims.push_back(i);
  }
  for (const std::size_t victim : victims) {
    placement.set_available(victim, false);
    std::uint64_t moved = 0;
    std::uint64_t cross = 0;
    for (std::uint64_t key = 0; key < keys; ++key) {
      const std::size_t after = placement.place(key).index;
      if (after != before[key]) {
        ++moved;
        if (before[key] != victim) ++cross;  // contract violation if > 0
      }
    }
    placement.set_available(victim, true);
    const double share =
        targets[victim].weight / placement.total_weight() * 100.0;
    const std::string hardware(pace::hardware_name(resources[victim].hardware));
    std::printf("  %-10s %-16s %8.2f %8.2f %10llu\n",
                resources[victim].name.c_str(), hardware.c_str(), share,
                100.0 * static_cast<double>(moved) / static_cast<double>(keys),
                static_cast<unsigned long long>(cross));
  }
  std::printf("\n  (moved%% tracks the victim's weight share and cross-moves "
              "stay 0: removing a\n   resource disturbs only its own keys — "
              "the hierarchy instead re-discovers\n   every request routed "
              "near the failure.)\n");
}

/// Degradation check: the hashed family under message loss and agent
/// churn still completes everything — placements ride the reliable link.
int churn_campaign(int agents) {
  core::ScenarioSpec spec;
  spec.agent_count = agents;
  spec.requests_per_agent = 10;
  core::ExperimentConfig config = core::scenario_experiment(spec);
  config.placement = core::PlacementFamily::kHashPlacement;
  config.system.sim_shards = 0;
  config.system.fault.drop_prob = 0.05;
  config.system.fault.jitter_max = 0.2;
  config.system.fault_tolerance.enabled = true;
  config.system.agent_churn.enabled = true;
  config.system.agent_churn.mtbf = 1800.0;
  config.system.agent_churn.mttr = 20.0;
  config.system.agent_churn.horizon = 300.0;
  const core::ExperimentResult result = core::run_experiment(config);
  std::printf("\ncrush under 5%% loss + agent churn (%d agents): "
              "%llu/%llu completed, %llu placements, %llu retries, "
              "%llu crashes, %llu resubmitted\n",
              agents,
              static_cast<unsigned long long>(result.tasks_completed),
              static_cast<unsigned long long>(result.requests_submitted),
              static_cast<unsigned long long>(result.placement_decisions),
              static_cast<unsigned long long>(result.message_retries),
              static_cast<unsigned long long>(result.agent_crashes),
              static_cast<unsigned long long>(result.tasks_resubmitted));
  if (result.tasks_completed < result.requests_submitted) {
    std::fprintf(stderr, "FAIL: tasks lost under churn\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int max_agents = 1536;
  int requests_per_agent = 10;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-agents") == 0 && i + 1 < argc) {
      max_agents = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests-per-agent") == 0 &&
               i + 1 < argc) {
      requests_per_agent = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--max-agents N] [--requests-per-agent N] "
                   "[--csv]\n",
                   argv[0]);
      return 2;
    }
  }

  if (csv) {
    std::printf("agents,family,requests,eps_s,util,beta,msgs_per_req,"
                "discovery_msgs_per_req,mean_hops\n");
  } else {
    std::printf("placement families on generated fanout-3 grids "
                "(%d requests/agent):\n\n",
                requests_per_agent);
    std::printf("  %6s %-7s %8s %8s %6s %6s %9s %9s %6s\n", "agents",
                "family", "requests", "eps(s)", "util%", "beta%", "msgs/req",
                "disc/req", "hops");
  }
  for (const int agents : {3, 12, 48, 192, 768, 1536, 3072, 6144, 10000}) {
    if (agents > max_agents) break;
    core::ScenarioSpec spec;
    spec.agent_count = agents;
    spec.requests_per_agent = requests_per_agent;
    spec.arrival_interval = 0.0;  // auto: per-agent rate held constant
    print_row(agents, "agent",
              run_family(spec, core::PlacementFamily::kAgentDiscovery), csv);
    print_row(agents, "crush",
              run_family(spec, core::PlacementFamily::kHashPlacement), csv);
  }
  if (csv) return 0;

  std::printf("\nreading: the crush rows pay a fixed 2 messages per request "
              "(submit + result)\nand zero discovery traffic at every scale; "
              "the hierarchy's per-request message\nbill grows with depth "
              "and pull chatter.  The hierarchy keeps an edge on beta\n— "
              "stale-but-real load signals beat static weights — which is "
              "the price of\nstatelessness the straw map's backlog discount "
              "only partly recovers.\n");

  remap_section(192);
  return churn_campaign(192);
}
