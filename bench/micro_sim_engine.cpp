// micro_sim_engine — event-loop and shard-scaling microbench (DESIGN.md
// §13).  The google-benchmark rows measure raw event throughput of the
// sequence-ordered engine against the lineage-ordered shard mode (the
// per-event cost of carrying exec records).  `--json <path>` additionally
// writes the machine-readable scaling report compared by CI against the
// committed BENCH_sim_engine.json: a 96-agent fanout-3 campaign run once
// on the classic single queue and once sharded across min(4, hardware)
// threads, gated on the machine-normalized speedup_vs_single_shard ratio
// — raw seconds are reported but never gated on.  The report also
// re-checks shard-count invariance: both runs must produce identical
// results, not just similar ones.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "json_bench.hpp"
#include "sim/engine.hpp"

namespace {

using namespace gridlb;

// Self-perpetuating event chain: the per-event cost of schedule + pop +
// dispatch, the inner loop of every experiment.
void run_event_chain(sim::Engine& engine, std::int64_t events) {
  std::int64_t remaining = events;
  std::function<void()> tick = [&] {
    if (--remaining > 0) engine.schedule_in(1.0, tick);
  };
  engine.schedule_in(1.0, tick);
  engine.run();
}

void BM_EngineSeq(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    run_event_chain(engine, state.range(0));
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineSeq)->Arg(100000)->UseRealTime();

void BM_EngineLineage(benchmark::State& state) {
  for (auto _ : state) {
    sim::LineageShared shared;
    sim::Engine engine(&shared, 0);
    engine.set_serial_finalize(true);
    run_event_chain(engine, state.range(0));
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineLineage)->Arg(100000)->UseRealTime();

// --- the --json scaling report -----------------------------------------

core::ExperimentConfig campaign_config(int shards) {
  core::ScenarioSpec spec;
  spec.agent_count = 96;
  spec.fanout = 3;
  spec.requests_per_agent = 25;
  spec.arrival_interval = 0.0;  // auto: the paper's per-agent rate
  core::ExperimentConfig config = core::scenario_experiment(spec);
  config.system.sim_shards = shards;
  return config;
}

double campaign_seconds(int shards, core::ExperimentResult* out) {
  using clock = std::chrono::steady_clock;
  double best = 0.0;
  for (int rep = 0; rep < 2; ++rep) {  // best-of-2: the run is seconds long
    const auto start = clock::now();
    core::ExperimentResult result =
        core::run_experiment(campaign_config(shards));
    const double elapsed =
        std::chrono::duration<double>(clock::now() - start).count();
    if (rep == 0 || elapsed < best) best = elapsed;
    if (out != nullptr) *out = std::move(result);
  }
  return best;
}

void write_scaling_report(const std::string& path) {
  const int hardware = ThreadPool::hardware_threads();
  const int multi_shards = std::min(4, hardware);

  const double seq_ns = benchjson::measure_ns_per_op([](std::int64_t iters) {
    sim::Engine engine;
    run_event_chain(engine, iters);
  });
  const double lineage_ns =
      benchjson::measure_ns_per_op([](std::int64_t iters) {
        sim::LineageShared shared;
        sim::Engine engine(&shared, 0);
        engine.set_serial_finalize(true);
        run_event_chain(engine, iters);
      });

  core::ExperimentResult single;
  core::ExperimentResult multi;
  const double single_seconds = campaign_seconds(1, &single);
  const double multi_seconds = campaign_seconds(multi_shards, &multi);

  // The scaling ratio is only meaningful if the sharded run still computes
  // the same simulation (DESIGN.md §13's invariance contract).
  const bool identical = single.finished_at == multi.finished_at &&
                         single.tasks_completed == multi.tasks_completed &&
                         single.network_messages == multi.network_messages &&
                         single.sim_events == multi.sim_events &&
                         single.mean_hops == multi.mean_hops;
  GRIDLB_REQUIRE(identical,
                 "sharded campaign diverged from the single-shard reference");

  std::ofstream out(path);
  benchjson::JsonWriter json(out);
  json.begin_object();
  json.field("bench", "micro_sim_engine");
  json.field("schema_version", 1);
  json.begin_object("workload");
  json.field("agents", 96);
  json.field("fanout", 3);
  json.field("requests_per_agent", 25);
  json.field("tasks", static_cast<std::uint64_t>(single.tasks_completed));
  json.end_object();
  json.begin_object("event_loop");
  json.field("seq_ns_per_event", seq_ns);
  json.field("lineage_ns_per_event", lineage_ns);
  json.field("lineage_overhead", lineage_ns / seq_ns);
  json.end_object();
  json.begin_object("campaign");
  json.field("hardware_threads", hardware);
  json.field("shards", multi_shards);
  json.field("single_shard_seconds", single_seconds);
  json.field("multi_shard_seconds", multi_seconds);
  json.field("sim_events", static_cast<std::uint64_t>(single.sim_events));
  json.end_object();
  json.field("speedup_vs_single_shard", single_seconds / multi_seconds);
  json.field("results_identical", identical ? 1 : 0);
  json.field("peak_rss_bytes", benchjson::peak_rss_bytes());
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      gridlb::benchjson::extract_json_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!json_path.empty()) write_scaling_report(json_path);
  return 0;
}
