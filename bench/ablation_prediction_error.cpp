// Ablation: PACE prediction accuracy (the paper's stated future work).
//
// "Future enhancement to the system will include the impact of the
// accuracy of the PACE predictive data on grid load balancing and
// scheduling."  Here: every task's *actual* execution time deviates from
// its prediction by a deterministic multiplicative factor uniform in
// [1−e, 1+e], while schedulers, matchmaking and advertisements keep
// using the predictions.  The sweep measures how grid-level metrics
// degrade as predictions get worse, for experiments 2 and 3.

#include <cstdio>

#include "core/gridlb.hpp"

namespace {

using namespace gridlb;

void sweep(const char* label, core::ExperimentConfig base) {
  std::printf("%s:\n", label);
  std::printf("  %7s %9s %8s %8s %8s\n", "error", "eps(s)", "util%", "beta%",
              "met%");
  for (const double error : {0.0, 0.1, 0.2, 0.3, 0.5, 0.8}) {
    core::ExperimentConfig config = base;
    config.system.prediction_error = error;
    const auto result = core::run_experiment(config);
    const auto& total = result.report.total;
    const double met = total.tasks > 0
                           ? 100.0 * total.deadlines_met / total.tasks
                           : 0.0;
    std::printf("  %6.0f%% %9.1f %8.1f %8.1f %8.1f\n", error * 100.0,
                total.advance_time, total.utilisation * 100.0,
                total.balance * 100.0, met);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("prediction-error sweep (actual = predicted × U[1−e, 1+e], "
              "300 requests):\n\n");
  core::ExperimentConfig e2 = core::experiment2();
  e2.workload.count = 300;
  sweep("experiment 2 (GA, no agents)", e2);
  core::ExperimentConfig e3 = core::experiment3();
  e3.workload.count = 300;
  sweep("experiment 3 (GA + agents)", e3);
  std::printf("reading: moderate errors degrade deadline compliance "
              "gracefully — schedules\nand advertised freetimes drift but "
              "re-optimisation at every event absorbs\nmost of it; the "
              "agent-coupled system stays ahead of GA-only at every error\n"
              "level because discovery decisions only need the *relative* "
              "estimates.\n");
  return 0;
}
