// Ablation: GA parameters (paper §2.1 uses a fixed population of 50).
//
// Sweeps population size and generation budget over a fixed 20-task
// scheduling problem and reports the achieved cost, makespan and deadline
// misses, quantifying how much search the case study's settings actually
// need.  Also isolates the two operator stages (crossover / mutation) and
// the greedy seeding.

#include <cstdio>

#include "core/gridlb.hpp"

namespace {

using namespace gridlb;

std::vector<sched::Task> make_tasks(const pace::ApplicationCatalogue& apps) {
  Rng rng(17);
  std::vector<sched::Task> tasks;
  for (std::uint64_t i = 0; i < 20; ++i) {
    sched::Task task;
    task.id = TaskId(i);
    task.app = apps.all()[static_cast<std::size_t>(rng.next_below(apps.size()))];
    const auto domain = task.app->deadline_domain();
    task.deadline = rng.uniform(domain.lo, domain.hi);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

struct Row {
  double cost;
  double makespan;
  int misses;
  std::uint64_t decodes;
};

Row run(const pace::ApplicationCatalogue& apps, sched::GaConfig config,
        std::uint64_t seed) {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator cache(engine);
  sched::ScheduleBuilder builder(
      cache, pace::ResourceModel::of(pace::HardwareType::kSunUltra5), 16);
  sched::GaScheduler scheduler(builder, config, seed);
  const auto tasks = make_tasks(apps);
  const std::vector<SimTime> idle(16, 0.0);
  const auto result = scheduler.optimize(tasks, idle, 0.0);
  return Row{result.best_cost, result.schedule.makespan,
             result.schedule.deadline_misses, result.decodes};
}

}  // namespace

int main() {
  using namespace gridlb;
  const auto apps = pace::paper_catalogue();

  std::printf("population sweep (60 generations):\n");
  std::printf("  %4s %10s %10s %7s %9s\n", "pop", "cost", "makespan",
              "misses", "decodes");
  for (const int pop : {4, 10, 25, 50, 100}) {
    sched::GaConfig config;
    config.population_size = pop;
    config.generations = 60;
    const Row row = run(apps, config, 5);
    std::printf("  %4d %10.2f %10.1f %7d %9llu\n", pop, row.cost,
                row.makespan, row.misses,
                static_cast<unsigned long long>(row.decodes));
  }

  std::printf("\ngeneration sweep (population 50, the paper's setting):\n");
  std::printf("  %4s %10s %10s %7s\n", "gens", "cost", "makespan", "misses");
  for (const int generations : {1, 5, 15, 25, 60, 150}) {
    sched::GaConfig config;
    config.generations = generations;
    const Row row = run(apps, config, 5);
    std::printf("  %4d %10.2f %10.1f %7d\n", generations, row.cost,
                row.makespan, row.misses);
  }

  std::printf("\noperator ablation (population 50, 60 generations):\n");
  std::printf("  %-28s %10s %10s %7s\n", "variant", "cost", "makespan",
              "misses");
  struct Variant {
    const char* name;
    void (*apply)(sched::GaConfig&);
  };
  const Variant variants[] = {
      {"full (paper configuration)", [](sched::GaConfig&) {}},
      {"no crossover",
       [](sched::GaConfig& c) { c.crossover_rate = 0.0; }},
      {"no mutation",
       [](sched::GaConfig& c) {
         c.order_swap_rate = 0.0;
         c.bit_flip_rate = 0.0;
       }},
      {"no greedy seeding",
       [](sched::GaConfig& c) { c.seed_heuristic = false; }},
      {"no elitism", [](sched::GaConfig& c) { c.elite = 0; }},
  };
  for (const auto& variant : variants) {
    sched::GaConfig config;
    config.generations = 60;
    variant.apply(config);
    const Row row = run(apps, config, 5);
    std::printf("  %-28s %10.2f %10.1f %7d\n", variant.name, row.cost,
                row.makespan, row.misses);
  }
  return 0;
}
