// Reproduces Fig. 9: trends of the resource utilisation rate υ across
// experiments 1-3.  Expected shape (paper §4.2): overall utilisation rises
// with each mechanism; overloaded platforms (S11, S12) benefit mainly from
// GA scheduling, lightly-loaded ones (S1, S2) chiefly from the agent
// mechanism dispatching more work to them.

#include <cstdio>

#include "experiment_suite.hpp"

int main() {
  using namespace gridlb;
  const auto results = bench::run_experiment_suite();

  std::printf("Fig. 9 — resource utilisation rate (%%) by experiment\n\n");
  bench::print_series(results, "util%", [](const metrics::MetricsRow& row) {
    return row.utilisation * 100.0;
  });

  const auto& r = results;
  std::printf("\nshape checks:\n");
  const auto check = [](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  check(r[0].report.total.utilisation < r[1].report.total.utilisation &&
            r[1].report.total.utilisation < r[2].report.total.utilisation,
        "grid utilisation improves monotonically across experiments");
  // S1 (lightly loaded without agents) gains most of its utilisation from
  // the agent mechanism.
  const double s1_from_ga = r[1].report.resources[0].utilisation -
                            r[0].report.resources[0].utilisation;
  const double s1_from_agents = r[2].report.resources[0].utilisation -
                                r[1].report.resources[0].utilisation;
  check(s1_from_agents > s1_from_ga,
        "S1 benefits more from agents than from the GA");
  return 0;
}
