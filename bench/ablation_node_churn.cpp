// Ablation: node availability churn and the resource monitor.
//
// The paper's resource monitor "queries each known node every five
// minutes" and feeds "the currently available resources P" to the GA,
// which "is able to absorb system changes such as … changes in the number
// of hosts or processors available in the local domain".  This bench
// subjects every resource to an exponential failure/repair process and
// sweeps (a) the failure intensity at the paper's 5-minute poll and
// (b) the poll period at a fixed intensity — the staleness cost of slow
// monitoring.

#include <cstdio>

#include "core/gridlb.hpp"

namespace {

using namespace gridlb;

core::ExperimentResult run(double mtbf, double mttr, double poll) {
  core::ExperimentConfig config = core::experiment3();
  config.workload.count = 300;
  config.system.churn.enabled = true;
  config.system.churn.mtbf = mtbf;
  config.system.churn.mttr = mttr;
  config.system.churn.horizon = 900.0;
  config.system.churn.poll_period = poll;
  return core::run_experiment(config);
}

void print_row(const char* label, const core::ExperimentResult& result) {
  const auto& total = result.report.total;
  const double met =
      total.tasks > 0 ? 100.0 * total.deadlines_met / total.tasks : 0.0;
  std::printf("  %-22s %9.1f %8.1f %8.1f %8.1f %10.0f\n", label,
              total.advance_time, total.utilisation * 100.0,
              total.balance * 100.0, met, result.finished_at);
}

}  // namespace

int main() {
  std::printf("node-churn sweep (experiment 3, 300 requests, repair mean "
              "120 s):\n\n");
  std::printf("  %-22s %9s %8s %8s %8s %10s\n", "failure intensity",
              "eps(s)", "util%", "beta%", "met%", "horizon(s)");
  {
    core::ExperimentConfig config = core::experiment3();
    config.workload.count = 300;
    print_row("no churn", core::run_experiment(config));
  }
  print_row("MTBF 2400s (rare)", run(2400.0, 120.0, 300.0));
  print_row("MTBF 1200s", run(1200.0, 120.0, 300.0));
  print_row("MTBF 600s (heavy)", run(600.0, 120.0, 300.0));

  std::printf("\npoll-period sweep at MTBF 600 s (staleness cost of slow "
              "monitoring):\n\n");
  std::printf("  %-22s %9s %8s %8s %8s %10s\n", "poll period", "eps(s)",
              "util%", "beta%", "met%", "horizon(s)");
  for (const double poll : {30.0, 100.0, 300.0, 600.0}) {
    char label[32];
    std::snprintf(label, sizeof label, "poll every %.0fs", poll);
    print_row(label, run(600.0, 120.0, poll));
  }
  std::printf("\nreading: the GA absorbs node departures (tasks re-pack "
              "onto survivors);\nslower polling widens the window in which "
              "the scheduler plans around nodes\nthat are already gone — "
              "or ignores nodes that have already returned.\n");
  return 0;
}
