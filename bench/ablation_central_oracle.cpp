// Ablation: decentralised discovery vs an omniscient central dispatcher.
//
// The paper's architectural argument is that neighbour-only advertisement
// and discovery scale because "the system has no central structure which
// might act as a potential bottleneck" — accepting that decisions are
// made on stale, partial information.  The idealised upper bound is a
// central dispatcher with a live, global view and free coordination.
// This bench measures the gap on the case-study workload, plus what each
// architecture pays in messages.

#include <cstdio>

#include "core/gridlb.hpp"

namespace {

using namespace gridlb;

void print_row(const char* label, const core::ExperimentResult& result) {
  const auto& total = result.report.total;
  std::printf("  %-28s %8.1f %7.1f %7.1f %9llu\n", label,
              total.advance_time, total.utilisation * 100.0,
              total.balance * 100.0,
              static_cast<unsigned long long>(result.network_messages));
}

}  // namespace

int main() {
  std::printf("central oracle vs decentralised discovery (600 requests):\n\n");
  std::printf("  %-28s %8s %7s %7s %9s\n", "architecture", "eps(s)", "util%",
              "beta%", "messages");

  {
    core::ExperimentConfig config = core::experiment2();
    config.name = "no balancing (exp 2)";
    print_row("GA only, no balancing", core::run_experiment(config));
  }
  {
    core::ExperimentConfig config = core::experiment3();
    print_row("agents (exp 3, 10s pulls)", core::run_experiment(config));
  }
  {
    core::ExperimentConfig config = core::experiment3();
    config.system.scope = agents::AdvertisementScope::kTransitive;
    print_row("agents, transitive scope", core::run_experiment(config));
  }
  {
    core::ExperimentConfig config = core::experiment3();
    config.name = "central oracle";
    config.placement = core::PlacementFamily::kCentralOracle;
    print_row("central omniscient oracle", core::run_experiment(config));
  }
  std::printf("\nreading: the oracle bounds achievable quality; the "
              "hierarchy recovers most\nof the gap between no balancing and "
              "the oracle while exchanging only\nneighbour-local messages — "
              "the paper's scalability argument, quantified.\n");
  return 0;
}
