// Microbenchmarks (google-benchmark) for the scheduling kernels:
//   * PACE evaluation — raw engine vs cached path,
//   * schedule decoding (the GA's inner loop), both as the legacy
//     self-contained full decode and as the DESIGN.md §11 hot path
//     (prepared context + metrics-only evaluate),
//   * one GA generation at the paper's settings,
//   * one FIFO placement (2^16−1 subset enumeration),
//   * agent matchmaking (eq. 10),
//   * XML round-trip of the agent documents.
// These back the performance discussion in §2.2 of the paper with
// measured numbers on this machine.  `--json <path>` writes the decode vs
// evaluate comparison (plus the PACE layer costs and peak RSS) as a
// machine-readable report.

#include <benchmark/benchmark.h>

#include <fstream>

#include "core/gridlb.hpp"
#include "json_bench.hpp"

namespace {

using namespace gridlb;

std::vector<sched::Task> make_tasks(int count) {
  static const pace::ApplicationCatalogue catalogue = pace::paper_catalogue();
  Rng rng(5);
  std::vector<sched::Task> tasks;
  for (int i = 0; i < count; ++i) {
    sched::Task task;
    task.id = TaskId(static_cast<std::uint64_t>(i));
    task.app = catalogue.all()[static_cast<std::size_t>(
        rng.next_below(catalogue.size()))];
    const auto domain = task.app->deadline_domain();
    task.deadline = rng.uniform(domain.lo, domain.hi);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

void BM_PaceEvaluateRaw(benchmark::State& state) {
  pace::EvaluationEngine engine;
  const auto model = pace::make_paper_application("sweep3d");
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  int nproc = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(*model, sgi, nproc));
    nproc = nproc % 16 + 1;
  }
}
BENCHMARK(BM_PaceEvaluateRaw);

void BM_PaceEvaluateCached(benchmark::State& state) {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator cache(engine);
  const auto model = pace::make_paper_application("sweep3d");
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  int nproc = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.evaluate(*model, sgi, nproc));
    nproc = nproc % 16 + 1;
  }
}
BENCHMARK(BM_PaceEvaluateCached);

void BM_ScheduleDecode(benchmark::State& state) {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator cache(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  sched::ScheduleBuilder builder(cache, sgi, 16);
  const auto tasks = make_tasks(static_cast<int>(state.range(0)));
  Rng rng(9);
  const auto solution =
      sched::SolutionString::random(static_cast<int>(tasks.size()), 16, rng);
  const std::vector<SimTime> idle(16, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.decode(tasks, solution, idle, 0.0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tasks.size()));
}
BENCHMARK(BM_ScheduleDecode)->Arg(5)->Arg(20)->Arg(50)->Arg(200)->Arg(600);

// The GA's steady-state evaluation (DESIGN.md §11): prediction rows and
// node availability hoisted into a prepared context, metrics-only decode
// into a reusable scratch — no allocations, no lock acquisitions.
void BM_ScheduleEvaluate(benchmark::State& state) {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator cache(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  sched::ScheduleBuilder builder(cache, sgi, 16);
  const auto tasks = make_tasks(static_cast<int>(state.range(0)));
  Rng rng(9);
  const auto solution =
      sched::SolutionString::random(static_cast<int>(tasks.size()), 16, rng);
  const std::vector<SimTime> idle(16, 0.0);
  sched::DecodeContext context;
  sched::DecodeScratch scratch;
  builder.prepare(context, tasks, idle, 0.0, sched::full_mask(16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.evaluate(context, solution, scratch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tasks.size()));
}
BENCHMARK(BM_ScheduleEvaluate)->Arg(5)->Arg(20)->Arg(50)->Arg(200)->Arg(600);

void BM_GaGeneration(benchmark::State& state) {
  // One optimize() call with a single generation at the paper's settings
  // (population 50); ~50 decodes ≈ the paper's "1000 evaluations per
  // generation" once the 20-task decode loop is unrolled.
  pace::EvaluationEngine engine;
  pace::CachedEvaluator cache(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  sched::ScheduleBuilder builder(cache, sgi, 16);
  const auto tasks = make_tasks(20);
  sched::GaConfig config;
  config.generations = 1;
  sched::GaScheduler scheduler(builder, config, 11);
  const std::vector<SimTime> idle(16, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.optimize(tasks, idle, 0.0));
  }
}
BENCHMARK(BM_GaGeneration);

void BM_FifoPlacement(benchmark::State& state) {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator cache(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  sched::FifoScheduler fifo(cache, sgi, 16);
  const auto tasks = make_tasks(1);
  std::vector<SimTime> free(16, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fifo.place(tasks[0], free, 0.0));
  }
  state.SetItemsProcessed(state.iterations() * 65535);
}
BENCHMARK(BM_FifoPlacement);

void BM_AgentMatchmaking(benchmark::State& state) {
  // eq. 10: n evaluation calls + comparison, through the cache.
  sim::Engine engine;
  const pace::ApplicationCatalogue catalogue = pace::paper_catalogue();
  agents::SystemConfig config;
  config.resources = {{"S1", pace::HardwareType::kSgiOrigin2000, 16, -1}};
  agents::AgentSystem system(engine, catalogue, std::move(config), nullptr);
  const agents::Agent& agent = system.agent(0);
  const agents::ServiceInfo info = agent.service_snapshot();
  agents::Request request;
  request.app_name = "jacobi";
  request.environment = "test";
  request.deadline = 1e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.estimate_completion(info, request));
  }
}
BENCHMARK(BM_AgentMatchmaking);

void BM_ServiceInfoXmlRoundTrip(benchmark::State& state) {
  agents::ServiceInfo info;
  info.agent_address = "gem.dcs.warwick.ac.uk";
  info.agent_port = 1000;
  info.local_address = "gem.dcs.warwick.ac.uk";
  info.local_port = 10000;
  info.hardware_type = "SunUltra10";
  info.nproc = 16;
  info.environments = {"mpi", "pvm", "test"};
  info.freetime = 4312.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agents::service_info_from_xml(to_xml(info)));
  }
}
BENCHMARK(BM_ServiceInfoXmlRoundTrip);

void BM_RequestXmlRoundTrip(benchmark::State& state) {
  agents::Request request;
  request.task = TaskId(42);
  request.app_name = "sweep3d";
  request.binary_file = "/gridlb/binary/sweep3d";
  request.input_file = "/gridlb/binary/sweep3d.input";
  request.model_name = "/gridlb/model/sweep3d";
  request.deadline = 437.25;
  request.email = "user@gridlb.sim";
  request.visited = {AgentId(3), AgentId(1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(agents::request_from_xml(to_xml(request)));
  }
}
BENCHMARK(BM_RequestXmlRoundTrip);

// The `--json` report: decode vs evaluate ns at three queue depths, the
// PACE layer costs, and peak RSS — steady_clock, independent of
// google-benchmark's own reporters.
void write_json_report(const std::string& path) {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator cache(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  sched::ScheduleBuilder builder(cache, sgi, 16);
  const std::vector<SimTime> idle(16, 0.0);

  std::ofstream out(path);
  benchjson::JsonWriter json(out);
  json.begin_object();
  json.field("bench", "micro_schedulers");
  json.field("schema_version", 1);
  json.begin_array("schedule");
  for (const int count : {20, 200, 600}) {
    const auto tasks = make_tasks(count);
    Rng rng(9);
    const auto solution = sched::SolutionString::random(count, 16, rng);
    const double decode_ns =
        benchjson::measure_ns_per_op([&](std::int64_t iters) {
          for (std::int64_t i = 0; i < iters; ++i) {
            benchmark::DoNotOptimize(
                builder.decode(tasks, solution, idle, 0.0));
          }
        });
    sched::DecodeContext context;
    sched::DecodeScratch scratch;
    builder.prepare(context, tasks, idle, 0.0, sched::full_mask(16));
    (void)builder.evaluate(context, solution, scratch);
    const double evaluate_ns =
        benchjson::measure_ns_per_op([&](std::int64_t iters) {
          for (std::int64_t i = 0; i < iters; ++i) {
            benchmark::DoNotOptimize(
                builder.evaluate(context, solution, scratch));
          }
        });
    json.begin_object();
    json.field("tasks", count);
    json.field("full_decode_ns", decode_ns);
    json.field("evaluate_ns", evaluate_ns);
    json.field("speedup_vs_full_decode", decode_ns / evaluate_ns);
    json.end_object();
  }
  json.end_array();
  const auto model = pace::make_paper_application("sweep3d");
  int nproc = 1;
  const double raw_ns = benchjson::measure_ns_per_op([&](std::int64_t iters) {
    for (std::int64_t i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(engine.evaluate(*model, sgi, nproc));
      nproc = nproc % 16 + 1;
    }
  });
  const double cached_ns =
      benchjson::measure_ns_per_op([&](std::int64_t iters) {
        for (std::int64_t i = 0; i < iters; ++i) {
          benchmark::DoNotOptimize(cache.evaluate(*model, sgi, nproc));
          nproc = nproc % 16 + 1;
        }
      });
  json.begin_object("pace");
  json.field("raw_ns", raw_ns);
  json.field("cached_ns", cached_ns);
  json.end_object();
  json.field("peak_rss_bytes", benchjson::peak_rss_bytes());
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      gridlb::benchjson::extract_json_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!json_path.empty()) write_json_report(json_path);
  return 0;
}
