// Timeline view of the three experiments: when does each mechanism act?
//
// Table 3's aggregates hide the dynamics; this bench renders per-resource
// utilisation over 60-second windows for experiments 1–3.  Expected
// pattern: in experiments 1–2 the fast resources (S1–S4) go dark early
// while the slow ones (S8–S12) stay saturated long after the request
// phase ends (the queue tail the paper's −800…−1100 s delays come from);
// in experiment 3 the whole grid shades evenly and the run ends sooner.

#include <cstdio>

#include "common/log.hpp"
#include "core/gridlb.hpp"
#include "metrics/time_series.hpp"

int main() {
  using namespace gridlb;
  for (const core::ExperimentConfig& base :
       {core::experiment1(), core::experiment2(), core::experiment3()}) {
    core::ExperimentConfig config = base;
    config.workload.count = 600;
    log::info("running ", config.name, "…");

    // Re-run through the collector to keep the records.
    sim::Engine engine;
    metrics::MetricsCollector collector;
    const auto catalogue = pace::paper_catalogue();
    agents::AgentSystem system(engine, catalogue, config.system, &collector);
    system.start();
    agents::Portal portal(engine, system.network(), catalogue, &collector);
    const auto workload = core::generate_workload(
        config.workload, catalogue, static_cast<int>(system.size()));
    for (const auto& spec : workload) {
      engine.schedule_at(spec.at, [&, spec]() {
        portal.submit(system.agent(static_cast<std::size_t>(spec.agent_index)),
                      spec.app_name, engine.now() + spec.deadline_offset);
      });
    }
    while (collector.completed_tasks() < workload.size()) {
      if (!engine.step()) break;
    }

    const metrics::Timeline timeline =
        metrics::build_timeline(collector, 60.0);
    std::printf("\n%s — %zu windows of 60 s\n", config.name.c_str(),
                timeline.buckets());
    std::printf("%s", metrics::render_timeline(timeline).c_str());
  }
  return 0;
}
