// Timeline view of the three experiments: when does each mechanism act?
//
// Table 3's aggregates hide the dynamics; this bench renders per-resource
// utilisation over 60-second windows for experiments 1–3.  Expected
// pattern: in experiments 1–2 the fast resources (S1–S4) go dark early
// while the slow ones (S8–S12) stay saturated long after the request
// phase ends (the queue tail the paper's −800…−1100 s delays come from);
// in experiment 3 the whole grid shades evenly and the run ends sooner.

#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "core/gridlb.hpp"
#include "metrics/time_series.hpp"

int main() {
  using namespace gridlb;
  std::vector<sched::CompletionRecord> last_records;
  std::vector<std::pair<std::string, int>> last_resources;
  double last_end = 0.0;
  for (const core::ExperimentConfig& base :
       {core::experiment1(), core::experiment2(), core::experiment3()}) {
    core::ExperimentConfig config = base;
    config.workload.count = 600;
    log::info("running ", config.name, "…");

    // Re-run through the collector to keep the records.
    sim::Engine engine;
    metrics::MetricsCollector collector;
    const auto catalogue = pace::paper_catalogue();
    agents::AgentSystem system(engine, catalogue, config.system, &collector);
    system.start();
    agents::Portal portal(engine, system.network(), catalogue, &collector);
    const auto workload = core::generate_workload(
        config.workload, catalogue, static_cast<int>(system.size()));
    for (const auto& spec : workload) {
      engine.schedule_at(spec.at, [&, spec]() {
        portal.submit(system.agent(static_cast<std::size_t>(spec.agent_index)),
                      spec.app_name, engine.now() + spec.deadline_offset);
      });
    }
    while (collector.completed_tasks() < workload.size()) {
      if (!engine.step()) break;
    }

    const metrics::Timeline timeline =
        metrics::build_timeline(collector, 60.0);
    std::printf("\n%s — %zu windows of 60 s\n", config.name.c_str(),
                timeline.buckets());
    std::printf("%s", metrics::render_timeline(timeline).c_str());

    last_records = collector.records();
    last_resources = collector.resource_specs();
    last_end = collector.last_completion();
  }

  // Build-cost check: the builder visits only the buckets each record
  // overlaps, so shrinking the window (more buckets) scales the cost with
  // the extra buckets actually touched — not records × total buckets, the
  // quadratic blow-up the full-scan implementation had.
  std::printf("\ntimeline build cost (%zu records, experiment 3):\n",
              last_records.size());
  for (const double window : {600.0, 60.0, 6.0, 0.6}) {
    const auto t0 = std::chrono::steady_clock::now();
    const metrics::Timeline timeline = metrics::build_timeline(
        last_records, last_resources, window, 0.0, last_end);
    const auto t1 = std::chrono::steady_clock::now();
    const double micros =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    std::printf("  window %6.1fs -> %6zu buckets: %8.1f us (%5.2f us/record)\n",
                window, timeline.buckets(), micros,
                micros / static_cast<double>(last_records.size()));
  }
  return 0;
}
