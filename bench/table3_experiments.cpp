// Reproduces Table 3 (and the data behind Figs. 8–10): the three-way case
// study comparing FIFO-only, GA-only, and GA + agent-based discovery on
// the 12-resource grid of Fig. 7, under the §4.1 workload (600 requests,
// one per second, random applications/deadlines/entry agents, fixed seed).
//
// The paper's absolute numbers were measured on 2001-era hardware with the
// real PACE toolkit; this reproduction preserves the comparison's *shape*
// (see EXPERIMENTS.md for the side-by-side).

#include <cstdio>
#include <vector>

#include "core/gridlb.hpp"

namespace {

using namespace gridlb;

// Table 3 of the paper, for reference output: {eps, util%, beta%} per
// experiment, rows S1..S12 + Total.
struct PaperRow {
  const char* label;
  double e1[3];
  double e2[3];
  double e3[3];
};
constexpr PaperRow kPaperTable3[] = {
    {"S1", {42, 7, 71}, {52, 9, 89}, {29, 81, 96}},
    {"S2", {11, 9, 78}, {34, 9, 89}, {23, 81, 95}},
    {"S3", {-135, 13, 62}, {23, 13, 92}, {24, 77, 87}},
    {"S4", {-328, 22, 45}, {-30, 28, 96}, {44, 82, 94}},
    {"S5", {-607, 32, 56}, {-492, 58, 95}, {38, 82, 94}},
    {"S6", {-321, 25, 56}, {-123, 29, 90}, {42, 78, 92}},
    {"S7", {-261, 23, 57}, {10, 25, 92}, {38, 84, 93}},
    {"S8", {-695, 33, 52}, {-513, 52, 90}, {42, 82, 91}},
    {"S9", {-806, 45, 58}, {-724, 63, 90}, {30, 80, 84}},
    {"S10", {-405, 28, 61}, {-129, 34, 94}, {25, 81, 94}},
    {"S11", {-1095, 44, 50}, {-816, 73, 92}, {35, 75, 89}},
    {"S12", {-859, 41, 46}, {-550, 67, 91}, {26, 78, 90}},
    {"Total", {-475, 26, 31}, {-295, 38, 42}, {32, 80, 90}},
};

void print_design() {
  std::printf("Table 2 — experiment design\n");
  std::printf("  experiment                1    2    3\n");
  std::printf("  FIFO algorithm            x    .    .\n");
  std::printf("  GA algorithm              .    x    x\n");
  std::printf("  agent-based discovery     .    .    x\n\n");

  std::printf("Fig. 7 — case-study resources (16 nodes each)\n");
  for (const auto& spec : core::case_study_resources()) {
    std::printf("  %-4s %-18s parent=%s\n", spec.name.c_str(),
                std::string(pace::hardware_name(spec.hardware)).c_str(),
                spec.parent < 0
                    ? "(head)"
                    : core::case_study_resources()
                          [static_cast<std::size_t>(spec.parent)]
                              .name.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  print_design();

  std::vector<core::ExperimentResult> results;
  for (const core::ExperimentConfig& config :
       {core::experiment1(), core::experiment2(), core::experiment3()}) {
    std::printf("running %s…\n", config.name.c_str());
    results.push_back(core::run_experiment(config));
    const core::ExperimentResult& r = results.back();
    std::printf("  done: %llu tasks, virtual t=%.0fs, %llu sim events, "
                "%.2f mean hops, %llu messages\n",
                static_cast<unsigned long long>(r.tasks_completed),
                r.finished_at,
                static_cast<unsigned long long>(r.sim_events), r.mean_hops,
                static_cast<unsigned long long>(r.network_messages));
  }

  std::printf("\nTable 3 (this reproduction)\n%s\n",
              core::format_table3(results).c_str());

  std::printf("Table 3 (paper, for comparison)\n");
  std::printf("%6s", "");
  for (int e = 0; e < 3; ++e) {
    std::printf(" | %9s%9s%9s", "eps(s)", "util(%)", "beta(%)");
  }
  std::printf("\n");
  for (const PaperRow& row : kPaperTable3) {
    std::printf("%6s", row.label);
    for (const double* exp : {row.e1, row.e2, row.e3}) {
      std::printf(" | %9.0f%9.0f%9.0f", exp[0], exp[1], exp[2]);
    }
    std::printf("\n");
  }

  std::printf("\nshape checks (paper's qualitative claims):\n");
  const auto total = [&results](std::size_t e) -> const metrics::MetricsRow& {
    return results[e].report.total;
  };
  const auto check = [](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  check(total(0).advance_time < total(1).advance_time &&
            total(1).advance_time < total(2).advance_time,
        "eps improves monotonically across experiments 1->2->3");
  check(total(0).utilisation < total(1).utilisation &&
            total(1).utilisation < total(2).utilisation,
        "utilisation improves monotonically across experiments 1->2->3");
  check(total(0).balance < total(1).balance &&
            total(1).balance < total(2).balance,
        "grid balance improves monotonically across experiments 1->2->3");
  check(total(2).balance - total(1).balance >
            total(1).balance - total(0).balance,
        "agents contribute more to global balance than GA alone");
  return 0;
}
