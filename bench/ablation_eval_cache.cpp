// Ablation: the PACE evaluation cache (paper §2.2).
//
// "For a GA population of size 50, with 20 tasks being scheduled, 1000
// evaluations are required per generation.  If each evaluation takes 0.01
// seconds, then 10 seconds of computation are required per generation.
// However, many of the evaluations requested by the GA are likely to be
// exactly the same as those required by previous generations … a cache of
// all previous evaluations has been added between the scheduler and the
// PACE evaluation engine."
//
// This bench reproduces the motivating arithmetic: it replays the GA's
// evaluation request stream for a 20-task/50-individual population,
// measures the cache hit rate, and projects the per-generation wall time
// with and without the cache at the paper's 0.01 s/evaluation.

#include <cstdio>

#include "core/gridlb.hpp"

int main() {
  using namespace gridlb;

  pace::EvaluationEngine engine;
  pace::CachedEvaluator cache(engine);
  const auto catalogue = pace::paper_catalogue();
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  sched::ScheduleBuilder builder(cache, sgi, 16);

  // A 20-task queue drawn from the case-study mix.
  Rng rng(2003);
  std::vector<sched::Task> tasks;
  for (std::uint64_t i = 0; i < 20; ++i) {
    sched::Task task;
    task.id = TaskId(i);
    task.app = catalogue.all()[static_cast<std::size_t>(
        rng.next_below(catalogue.size()))];
    task.deadline = rng.uniform(20.0, 200.0);
    tasks.push_back(std::move(task));
  }

  sched::GaConfig config;
  config.population_size = 50;
  config.generations = 50;
  sched::GaScheduler scheduler(builder, config, 7);
  const std::vector<SimTime> idle(16, 0.0);
  const auto result = scheduler.optimize(tasks, idle, 0.0);

  const auto& stats = cache.stats();
  const double raw_eval_seconds = 0.01;  // the paper's figure
  const double lookups_per_generation =
      static_cast<double>(stats.lookups()) / config.generations;
  const double misses_per_generation =
      static_cast<double>(stats.misses) / config.generations;

  std::printf("GA evaluation stream: population %d, %d tasks, %d "
              "generations\n\n",
              config.population_size, static_cast<int>(tasks.size()),
              result.generations_run);
  std::printf("  evaluation requests        : %llu (%.0f per generation)\n",
              static_cast<unsigned long long>(stats.lookups()),
              lookups_per_generation);
  std::printf("  distinct (cache misses)    : %llu\n",
              static_cast<unsigned long long>(stats.misses));
  std::printf("  cache hit rate             : %.2f%%\n",
              stats.hit_rate() * 100.0);
  std::printf("  engine invocations         : %llu\n",
              static_cast<unsigned long long>(engine.evaluations()));
  std::printf("\nprojected PACE cost at %.2f s/evaluation (paper's figure):\n",
              raw_eval_seconds);
  std::printf("  without cache : %6.2f s per generation\n",
              lookups_per_generation * raw_eval_seconds);
  std::printf("  with cache    : %6.2f s per generation (first generations "
              "pay the misses)\n",
              misses_per_generation * raw_eval_seconds);
  std::printf("\n[%s] cache absorbs >90%% of GA evaluation requests\n",
              stats.hit_rate() > 0.9 ? "PASS" : "FAIL");
  return 0;
}
