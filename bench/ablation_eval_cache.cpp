// Ablation: the PACE evaluation cache (paper §2.2).
//
// "For a GA population of size 50, with 20 tasks being scheduled, 1000
// evaluations are required per generation.  If each evaluation takes 0.01
// seconds, then 10 seconds of computation are required per generation.
// However, many of the evaluations requested by the GA are likely to be
// exactly the same as those required by previous generations … a cache of
// all previous evaluations has been added between the scheduler and the
// PACE evaluation engine."
//
// This bench reproduces the motivating arithmetic: it replays the GA's
// evaluation request stream for a 20-task/50-individual population and
// projects the per-generation wall time with and without the caching
// layers at the paper's 0.01 s/evaluation.
//
// Since DESIGN.md §11 the layer is two-deep: each GA run snapshots the
// needed (application × nproc) predictions into a flat PredictionTable
// (the only step that touches the sharded cache), and every per-task
// prediction during evaluation is a lock-free table read.  The genotype
// memo sits above both and skips re-evaluating repeated individuals
// outright.  The paper's "cache absorbs the request stream" claim now
// holds for the stack: engine invocations per request ≈ 0.

#include <cstdio>

#include "core/gridlb.hpp"

int main() {
  using namespace gridlb;

  pace::EvaluationEngine engine;
  pace::CachedEvaluator cache(engine);
  const auto catalogue = pace::paper_catalogue();
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  sched::ScheduleBuilder builder(cache, sgi, 16);

  // A 20-task queue drawn from the case-study mix.
  Rng rng(2003);
  std::vector<sched::Task> tasks;
  for (std::uint64_t i = 0; i < 20; ++i) {
    sched::Task task;
    task.id = TaskId(i);
    task.app = catalogue.all()[static_cast<std::size_t>(
        rng.next_below(catalogue.size()))];
    task.deadline = rng.uniform(20.0, 200.0);
    tasks.push_back(std::move(task));
  }

  sched::GaConfig config;
  config.population_size = 50;
  config.generations = 50;
  sched::GaScheduler scheduler(builder, config, 7);
  const std::vector<SimTime> idle(16, 0.0);
  const auto result = scheduler.optimize(tasks, idle, 0.0);

  const auto& stats = cache.stats();
  const double raw_eval_seconds = 0.01;  // the paper's figure
  const double requests = static_cast<double>(result.table_reads);
  const double requests_per_generation = requests / config.generations;
  const double engine_per_generation =
      static_cast<double>(engine.evaluations()) / config.generations;
  const double absorbed =
      requests == 0.0
          ? 0.0
          : 1.0 - static_cast<double>(engine.evaluations()) / requests;

  std::printf("GA evaluation stream: population %d, %d tasks, %d "
              "generations\n\n",
              config.population_size, static_cast<int>(tasks.size()),
              result.generations_run);
  std::printf("  prediction requests        : %llu (%.0f per generation)\n",
              static_cast<unsigned long long>(result.table_reads),
              requests_per_generation);
  std::printf("  served by table snapshot   : lock-free array reads\n");
  std::printf("  snapshot builds (cache)    : %llu lookups, %llu distinct\n",
              static_cast<unsigned long long>(stats.lookups()),
              static_cast<unsigned long long>(stats.misses));
  std::printf("  engine invocations         : %llu\n",
              static_cast<unsigned long long>(engine.evaluations()));
  std::printf("  evaluations skipped (memo) : %llu of %llu individuals\n",
              static_cast<unsigned long long>(result.memo_hits),
              static_cast<unsigned long long>(result.decodes +
                                              result.memo_hits));
  std::printf("  requests absorbed          : %.2f%%\n", absorbed * 100.0);
  std::printf("\nprojected PACE cost at %.2f s/evaluation (paper's figure):\n",
              raw_eval_seconds);
  std::printf("  without caching : %6.2f s per generation\n",
              requests_per_generation * raw_eval_seconds);
  std::printf("  with table+cache: %6.2f s per generation (the first "
              "generation pays the snapshot)\n",
              engine_per_generation * raw_eval_seconds);
  std::printf("\n[%s] table+cache absorb >90%% of GA prediction requests\n",
              absorbed > 0.9 ? "PASS" : "FAIL");
  return 0;
}
