// Ablation: the two readings of the paper's FIFO baseline.
//
// The paper describes the FIFO baseline as trying all 2^16−1 allocations
// and fixing "the current best solution" per task, without stating the
// objective.  Table 3's experiment-1 signature (overloaded resources at
// ~44% utilisation with ~−1000 s delays) is only consistent with a
// *min-execution* reading — tasks queue for their execution-optimal
// allocation while other nodes idle.  This bench runs experiment 1 under
// both readings so the choice is visible and quantified (see DESIGN.md).

#include <cstdio>

#include "core/gridlb.hpp"

int main() {
  using namespace gridlb;
  std::printf("FIFO objective ablation (experiment 1, 600 requests):\n\n");
  std::printf("  %-16s %9s %8s %8s %10s\n", "objective", "eps(s)", "util%",
              "beta%", "horizon(s)");
  for (const auto objective : {sched::FifoObjective::kMinExecution,
                               sched::FifoObjective::kMinCompletion}) {
    core::ExperimentConfig config = core::experiment1();
    config.system.fifo_objective = objective;
    const auto result = core::run_experiment(config);
    std::printf("  %-16s %9.1f %8.1f %8.1f %10.0f\n",
                objective == sched::FifoObjective::kMinExecution
                    ? "min-execution"
                    : "min-completion",
                result.report.total.advance_time,
                result.report.total.utilisation * 100.0,
                result.report.total.balance * 100.0, result.finished_at);
  }
  std::printf("\npaper experiment 1 totals: eps −475 s, util 26%%, beta "
              "31%%.\nmin-execution reproduces the overload signature; "
              "min-completion is a much\nstronger baseline and would erase "
              "most of the paper's exp1→exp2 gap.\n");
  return 0;
}
